// Shared-fabric all-reduce service: the discrete-event scheduler that
// multiplexes many training jobs onto one optical fabric.
//
// Where everything below this layer prices ONE all-reduce that owns the
// whole fabric, FabricService runs an open workload against a long-lived
// sim::Simulator clock: jobs arrive (schedule_at), wait in an admission
// queue under a pluggable policy, get a contiguous wavelength slice from
// the first-fit allocator as a net::ResourceLease, run for the time the
// wrht::plan closed forms predict at the granted width, then release the
// slice. The per-tenant report carries the SLO currency — p50/p99 job
// completion time, queue-wait vs service-time — and a bottleneck verdict.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wrht/common/units.hpp"
#include "wrht/obs/counters.hpp"
#include "wrht/plan/schedule_planner.hpp"
#include "wrht/sim/simulator.hpp"
#include "wrht/svc/job.hpp"
#include "wrht/svc/policy.hpp"

namespace wrht::obs {
class ChromeTraceSink;
class EventLog;
}  // namespace wrht::obs

namespace wrht::svc {

/// First-fit allocator of contiguous wavelength slices over [0, width).
/// Free intervals are kept sorted and coalesced, so fits()/allocate() scan
/// O(intervals) and release() merges with both neighbours.
class WavelengthAllocator {
 public:
  explicit WavelengthAllocator(std::uint32_t fabric_width);

  [[nodiscard]] std::uint32_t fabric_width() const { return fabric_; }
  [[nodiscard]] bool fits(std::uint32_t width) const;
  /// Lowest w_lo of a free [w_lo, w_lo + width) slice, or nullopt.
  [[nodiscard]] std::optional<std::uint32_t> allocate(std::uint32_t width);
  /// Returns a slice allocated earlier; throws on double-free or overlap.
  void release(std::uint32_t w_lo, std::uint32_t width);
  /// Total free wavelengths (not necessarily contiguous).
  [[nodiscard]] std::uint32_t free_width() const;
  /// Widest free contiguous slice (0 on a fully busy fabric). Together
  /// with free_width() this gives the fragmentation signal: a fabric with
  /// lots of free width but a small largest slice cannot admit wide jobs.
  [[nodiscard]] std::uint32_t largest_free() const;

 private:
  struct Interval {
    std::uint32_t lo;
    std::uint32_t hi;  // [lo, hi)
  };
  std::uint32_t fabric_;
  std::vector<Interval> free_;  // sorted by lo, pairwise disjoint
};

/// Opt-in service telemetry, BackendConfig-style: everything defaults
/// off, and a disabled run is byte-identical to the uninstrumented
/// service — same ServiceReport, same counters, same event schedule —
/// which the conformance tests pin.
struct TelemetryConfig {
  /// MetricsRegistry instruments sampled into TimeSeries on a virtual-time
  /// cadence.
  bool metrics = false;
  /// Structured svc-events-1 JSONL event log of every service transition.
  bool events = false;
  /// Chrome-trace export: one lane per tenant plus counter tracks for
  /// queue depth, wavelengths-in-use, and fragmentation.
  bool trace = false;
  /// Virtual-time sampling cadence of the metrics time series (the series
  /// resolution).
  Seconds sample_cadence{0.01};
  /// Ring capacity of each instrument's TimeSeries.
  std::size_t series_capacity = 4096;
  /// Workload seed recorded in the event-log header for provenance (the
  /// replay-determinism tests key logs by it).
  std::uint64_t seed = 0;

  [[nodiscard]] bool any() const { return metrics || events || trace; }
};

struct ServiceConfig {
  std::uint32_t fabric_wavelengths = 64;
  PolicyKind policy = PolicyKind::kFifo;
  /// Cost model the per-job service time is predicted with; `wavelengths`
  /// is overridden by each job's granted width.
  plan::PlannerOptions planner{};
  /// Weighted-fair share weights; tenants absent from the map weigh 1.0.
  std::map<std::uint32_t, double> tenant_weights;
  /// Per-tenant JCT targets; tenants absent from the map have no SLO and
  /// report zero burn. Drives TenantStats SLO fields and the rolling
  /// "svc.tenant<t>.slo_burn" gauges when telemetry is on.
  std::map<std::uint32_t, Seconds> slo_targets;
  /// Optional counter registry ("svc.*" events + the simulator's
  /// "sim.events_fired"); null costs nothing.
  obs::Counters* counters = nullptr;
  TelemetryConfig telemetry;
};

/// One tenant's SLO view of a completed run.
struct TenantStats {
  std::uint32_t tenant = 0;
  std::uint64_t jobs = 0;
  Seconds p50_jct{0.0};
  Seconds p99_jct{0.0};
  Seconds mean_queue_wait{0.0};
  Seconds mean_service_time{0.0};
  /// Granted wavelength-seconds (width x service time, summed).
  double wavelength_seconds = 0.0;
  /// JCT target from ServiceConfig::slo_targets (zero when the tenant has
  /// none; the SLO fields below stay zero too).
  Seconds slo_target{0.0};
  /// Completed jobs whose JCT exceeded the target.
  std::uint64_t slo_violations = 0;
  /// Burn rate: fraction of completed jobs that missed the target, in
  /// [0, 1]. 0 = SLO fully met.
  double slo_burn = 0.0;
  /// "queue-bound" when waiting dominates service, else "service-bound":
  /// the first thing to fix for this tenant's SLO.
  [[nodiscard]] std::string bottleneck() const;
};

struct ServiceReport {
  PolicyKind policy = PolicyKind::kFifo;
  std::uint32_t fabric_wavelengths = 0;
  /// Completion order.
  std::vector<JobRecord> records;
  /// Last completion on the fabric clock (first arrival is t >= 0).
  Seconds makespan{0.0};
  /// Granted wavelength-seconds / (fabric x makespan), in [0, 1].
  double utilization = 0.0;
  Seconds p50_jct{0.0};
  Seconds p99_jct{0.0};
  Seconds mean_queue_wait{0.0};
  std::vector<TenantStats> tenants;  // sorted by tenant id

  /// Human-readable per-tenant SLO/bottleneck table (the wrht_svc CLI
  /// prints exactly this).
  [[nodiscard]] std::string to_string() const;
};

/// Builds the ServiceReport aggregates from completion-ordered records.
/// This is the exact arithmetic (same summation order) the live service
/// runs, factored out so an event-log replay that reconstructs the same
/// records reproduces the report bit-for-bit — the identity
/// bench_svc_telemetry gates on.
[[nodiscard]] ServiceReport summarize_records(
    PolicyKind policy, std::uint32_t fabric_wavelengths,
    std::vector<JobRecord> records,
    const std::map<std::uint32_t, Seconds>& slo_targets = {});

/// Per-tenant SLO attainment table: target, p99 vs target, violations,
/// burn rate. Tenants without targets print "-".
[[nodiscard]] std::string slo_report(const ServiceReport& report);
/// Prints slo_report() to stdout.
void print_slo_report(const ServiceReport& report);

class FabricService {
 public:
  explicit FabricService(ServiceConfig config);
  ~FabricService();

  /// Runs the offered jobs to completion and reports. The internal
  /// simulator is long-lived: each call reset()s it, so one service can
  /// price many workloads (the bake-off bench does).
  [[nodiscard]] ServiceReport run(const std::vector<Job>& jobs);

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  /// Fabric clock (advances across a run; reset at the start of each).
  [[nodiscard]] const sim::Simulator& simulator() const { return simulator_; }

  /// Telemetry artifacts of the most recent run(); each returns null when
  /// the corresponding TelemetryConfig flag is off. The trace is
  /// materialized from the event log on first access (the hooks record
  /// events; spans and counter tracks are derived), so run() does not pay
  /// for building the export.
  [[nodiscard]] const obs::MetricsRegistry* metrics() const;
  [[nodiscard]] const obs::EventLog* event_log() const;
  [[nodiscard]] const obs::ChromeTraceSink* trace() const;

 private:
  struct Telemetry;  // service.cpp; alive only while telemetry is enabled

  void try_admit();
  /// Fastest feasible planner candidate at the job's granted width; one
  /// iteration's predicted time and the algorithm that achieves it.
  [[nodiscard]] std::pair<Seconds, plan::CandidateKind> price_iteration(
      const Job& job) const;

  void telemetry_begin(const std::vector<Job>& jobs);
  void telemetry_sample();
  /// Builds the Chrome trace from the recorded events (trace() calls
  /// this lazily; const because the Telemetry pointee is run() state).
  void build_trace() const;
  void on_submit(const Job& job);
  void on_admit(const Job& job);
  void on_grant(const JobRecord& record);
  void on_complete(const JobRecord& record);

  ServiceConfig config_;
  std::unique_ptr<AdmissionPolicy> policy_;
  sim::Simulator simulator_;
  WavelengthAllocator allocator_;
  std::vector<Job> queue_;  // arrival order
  std::vector<JobRecord> completed_;
  std::map<std::uint32_t, double> consumed_;  // tenant -> wavelength-seconds
  std::unique_ptr<Telemetry> telemetry_;
};

}  // namespace wrht::svc
