// Pluggable admission policies for the shared-fabric service.
//
// Whenever a wavelength slice frees up (or a job arrives), the service
// asks its policy which queued job to admit next. The policy sees the
// queue in arrival order plus two oracles: does a contiguous slice of a
// given width fit right now, and how much weighted fabric time has each
// tenant consumed. Returning kNone blocks admission until the next event.
//
//   * fifo          — strict arrival order; a head job too wide to place
//                     blocks everyone behind it.
//   * priority      — highest Job::priority first (FIFO among equals);
//                     still head-of-line blocking within that order.
//   * backfill      — first job in arrival order that fits; narrow jobs
//                     slip past a blocked wide head.
//   * weighted-fair — among fitting jobs, the one whose tenant has the
//                     least wavelength-seconds per unit weight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wrht/svc/job.hpp"

namespace wrht::svc {

enum class PolicyKind { kFifo, kPriority, kBackfill, kWeightedFair };

/// Stable lower-case names ("fifo", "priority", "backfill",
/// "weighted-fair") for CSV columns and CLI flags.
[[nodiscard]] std::string to_string(PolicyKind kind);
/// Inverse of to_string(); throws InvalidArgument for unknown names.
[[nodiscard]] PolicyKind policy_from_string(const std::string& name);
/// Every policy, in enum order (the bake-off bench sweeps this).
[[nodiscard]] std::vector<PolicyKind> all_policies();

/// What a policy may ask the service while selecting.
struct AdmissionContext {
  /// Can a contiguous slice of `width` wavelengths be allocated now?
  std::function<bool(std::uint32_t width)> fits;
  /// Wavelength-seconds granted to `tenant` so far, divided by the
  /// tenant's weight. Monotone within a run.
  std::function<double(std::uint32_t tenant)> weighted_consumption;
};

class AdmissionPolicy {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  virtual ~AdmissionPolicy();

  [[nodiscard]] virtual PolicyKind kind() const = 0;
  [[nodiscard]] std::string name() const { return to_string(kind()); }

  /// Index into `queue` (arrival order) of the job to admit next, or
  /// kNone to block until the next arrival/completion event.
  [[nodiscard]] virtual std::size_t select(
      const std::vector<Job>& queue, const AdmissionContext& ctx) const = 0;
};

[[nodiscard]] std::unique_ptr<AdmissionPolicy> make_policy(PolicyKind kind);

}  // namespace wrht::svc
