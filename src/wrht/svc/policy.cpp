#include "wrht/svc/policy.hpp"

#include "wrht/common/error.hpp"

namespace wrht::svc {

AdmissionPolicy::~AdmissionPolicy() = default;

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return "fifo";
    case PolicyKind::kPriority:
      return "priority";
    case PolicyKind::kBackfill:
      return "backfill";
    case PolicyKind::kWeightedFair:
      return "weighted-fair";
  }
  throw InvalidArgument("unknown PolicyKind");
}

PolicyKind policy_from_string(const std::string& name) {
  for (const PolicyKind kind : all_policies()) {
    if (to_string(kind) == name) return kind;
  }
  throw InvalidArgument("unknown admission policy '" + name +
                        "' (expected fifo, priority, backfill or "
                        "weighted-fair)");
}

std::vector<PolicyKind> all_policies() {
  return {PolicyKind::kFifo, PolicyKind::kPriority, PolicyKind::kBackfill,
          PolicyKind::kWeightedFair};
}

namespace {

class FifoPolicy final : public AdmissionPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::kFifo; }
  [[nodiscard]] std::size_t select(
      const std::vector<Job>& queue,
      const AdmissionContext& ctx) const override {
    if (queue.empty() || !ctx.fits(queue.front().width)) return kNone;
    return 0;
  }
};

class PriorityPolicy final : public AdmissionPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kPriority;
  }
  [[nodiscard]] std::size_t select(
      const std::vector<Job>& queue,
      const AdmissionContext& ctx) const override {
    if (queue.empty()) return kNone;
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
      // Strictly greater keeps FIFO order among equal priorities.
      if (queue[i].priority > queue[best].priority) best = i;
    }
    // Strict like FIFO: the chosen job blocks until it fits.
    return ctx.fits(queue[best].width) ? best : kNone;
  }
};

class BackfillPolicy final : public AdmissionPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kBackfill;
  }
  [[nodiscard]] std::size_t select(
      const std::vector<Job>& queue,
      const AdmissionContext& ctx) const override {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (ctx.fits(queue[i].width)) return i;
    }
    return kNone;
  }
};

class WeightedFairPolicy final : public AdmissionPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kWeightedFair;
  }
  [[nodiscard]] std::size_t select(
      const std::vector<Job>& queue,
      const AdmissionContext& ctx) const override {
    std::size_t best = kNone;
    double best_consumed = 0.0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (!ctx.fits(queue[i].width)) continue;
      const double consumed = ctx.weighted_consumption(queue[i].tenant);
      // Strictly less keeps FIFO order within a tenant and among tenants
      // at equal consumption.
      if (best == kNone || consumed < best_consumed) {
        best = i;
        best_consumed = consumed;
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<AdmissionPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>();
    case PolicyKind::kPriority:
      return std::make_unique<PriorityPolicy>();
    case PolicyKind::kBackfill:
      return std::make_unique<BackfillPolicy>();
    case PolicyKind::kWeightedFair:
      return std::make_unique<WeightedFairPolicy>();
  }
  throw InvalidArgument("unknown PolicyKind");
}

}  // namespace wrht::svc
