#include "wrht/svc/workload.hpp"

#include <algorithm>
#include <cmath>

#include "wrht/common/error.hpp"
#include "wrht/common/rng.hpp"
#include "wrht/dnn/zoo.hpp"

namespace wrht::svc {

namespace {

/// Exponential gap with the configured mean (inverse-CDF of a uniform
/// draw, clamped away from u = 1).
Seconds exponential_gap(Rng& rng, Seconds mean) {
  const double u = std::min(rng.uniform_real(0.0, 1.0), 1.0 - 1e-12);
  return Seconds(-mean.count() * std::log1p(-u));
}

/// Bounded Pareto factor in [1, 50] with tail index 1.2 — heavy enough
/// that a few inter-burst gaps dominate the trace, bounded so a single
/// draw cannot push the makespan off to infinity.
double pareto_factor(Rng& rng) {
  const double u = std::min(rng.uniform_real(0.0, 1.0), 1.0 - 1e-12);
  return std::min(std::pow(1.0 - u, -1.0 / 1.2), 50.0);
}

}  // namespace

std::vector<Job> generate_workload(const WorkloadConfig& config) {
  require(config.num_jobs >= 1, "generate_workload: num_jobs must be >= 1");
  require(config.num_tenants >= 1,
          "generate_workload: num_tenants must be >= 1");
  require(config.num_nodes >= 2, "generate_workload: num_nodes must be >= 2");
  require(config.fabric_wavelengths >= 8,
          "generate_workload: fabric must be at least 8 wavelengths (width "
          "classes are fabric/8 .. fabric)");
  require(config.min_iterations >= 1 &&
              config.min_iterations <= config.max_iterations,
          "generate_workload: bad iteration range");
  require(config.burstiness >= 0.0 && config.burstiness <= 1.0,
          "generate_workload: burstiness must be in [0, 1]");
  require(config.burst_length >= 1,
          "generate_workload: burst_length must be >= 1");

  Rng rng(config.seed);
  const std::vector<dnn::Model> models = dnn::paper_workloads();
  const std::uint32_t width_classes[4] = {
      config.fabric_wavelengths / 8, config.fabric_wavelengths / 4,
      config.fabric_wavelengths / 2, config.fabric_wavelengths};

  std::vector<Job> jobs;
  jobs.reserve(config.num_jobs);
  Seconds clock{0.0};
  std::uint32_t burst_left = 0;
  while (jobs.size() < config.num_jobs) {
    if (burst_left > 0) {
      // Burst members land almost on top of each other: the queue fills
      // faster than the fabric drains, which is the regime where the
      // admission order matters.
      clock += Seconds(exponential_gap(rng, config.mean_interarrival).count() *
                       0.01);
      --burst_left;
    } else {
      Seconds gap = exponential_gap(rng, config.mean_interarrival);
      if (config.burstiness > 0.0) {
        if (rng.uniform_real(0.0, 1.0) < config.burstiness) {
          burst_left = config.burst_length - 1;
        } else {
          // Stretch the quiet period between bursts so the mean offered
          // load stays comparable to the pure-Poisson trace.
          gap = Seconds(gap.count() * pareto_factor(rng));
        }
      }
      clock += gap;
    }

    Job job;
    job.id = jobs.size();
    job.tenant =
        static_cast<std::uint32_t>(rng.uniform_int(0, config.num_tenants - 1));
    const dnn::Model& model = models[jobs.size() % models.size()];
    job.model = model.name();
    job.num_nodes = config.num_nodes;
    job.elements = static_cast<std::size_t>(model.parameter_count());
    job.iterations = static_cast<std::uint32_t>(
        rng.uniform_int(config.min_iterations, config.max_iterations));
    job.width = width_classes[rng.uniform_int(0, 3)];
    job.priority = static_cast<std::uint32_t>(rng.uniform_int(0, 3));
    job.arrival = clock;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace wrht::svc
