#include "wrht/svc/replay.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "wrht/common/error.hpp"
#include "wrht/net/resource_lease.hpp"

namespace wrht::svc {

namespace {

/// Integrates a piecewise-constant signal: accumulate value * dt at each
/// transition, divide by the covered span at the end.
struct TimeWeightedMean {
  double integral = 0.0;
  double last_value = 0.0;
  Seconds last_time{0.0};
  bool started = false;

  void step(Seconds now, double value) {
    if (started) integral += last_value * (now - last_time).count();
    last_value = value;
    last_time = now;
    started = true;
  }

  [[nodiscard]] double mean(Seconds start, Seconds end) const {
    const double span = (end - start).count();
    return span > 0.0 ? integral / span : 0.0;
  }
};

}  // namespace

std::string ReplaySummary::to_string() const {
  char line[256];
  std::string out = "=== event-log replay (" +
                    std::string(obs::EventLog::kSchema) + ") ===\n";
  std::string counts;
  for (const auto& [kind, n] : event_counts) {
    counts += (counts.empty() ? "" : " ") + kind + "=" + std::to_string(n);
  }
  out += "events: " + counts + "\n";
  std::snprintf(line, sizeof(line),
                "queue depth: peak=%llu mean=%.2f (time-weighted)\n",
                static_cast<unsigned long long>(peak_queue_depth),
                mean_queue_depth);
  out += line;
  std::snprintf(line, sizeof(line),
                "fabric: mean utilization=%.1f%% (time-weighted), "
                "final util=%.1f%%\n",
                mean_utilization * 100.0, report.utilization * 100.0);
  out += line;
  out += "verdict: " + verdict + "\n\n";
  out += report.to_string();
  return out;
}

ReplaySummary replay_events(const obs::EventLog& log) {
  ReplaySummary out;
  const std::uint32_t fabric = log.context().fabric_wavelengths;
  require(fabric >= 1, "replay_events: log header has an empty fabric");

  struct Pending {
    Seconds arrival{0.0};
    Seconds grant{0.0};
    std::uint32_t tenant = 0;
    std::uint32_t w_lo = 0;
    std::uint32_t w_hi = 0;
    bool granted = false;
  };
  std::map<std::uint64_t, Pending> pending;  // job id -> timeline so far
  std::vector<JobRecord> records;            // completion order

  std::uint64_t depth = 0;
  std::uint32_t in_use = 0;
  TimeWeightedMean depth_mean;
  TimeWeightedMean util_mean;
  Seconds first{0.0};
  Seconds last{0.0};
  bool any = false;

  std::size_t index = 0;  // 0-based event index; JSONL line = index + 2
  for (const obs::ServiceEvent& e : log.events()) {
    ++index;
    // Names the offending JSONL line (header is line 1) so a corrupted
    // log points at itself instead of at the replay.
    const std::string at =
        " (event " + std::to_string(index) + ", line " +
        std::to_string(index + 1) + ")";
    if (!any) first = e.time;
    last = e.time;
    any = true;
    ++out.event_counts[obs::to_string(e.kind)];
    switch (e.kind) {
      case obs::ServiceEvent::Kind::kSubmit: {
        Pending& p = pending[e.job];
        p.arrival = e.time;
        p.tenant = e.tenant;
        ++depth;
        break;
      }
      case obs::ServiceEvent::Kind::kAdmit: {
        require(pending.count(e.job) != 0,
                "replay_events: admit of job " + std::to_string(e.job) +
                    " without a submit" + at);
        require(depth > 0,
                "replay_events: admit from an empty queue" + at);
        --depth;
        break;
      }
      case obs::ServiceEvent::Kind::kPreempt: {
        ++depth;  // back to the queue
        break;
      }
      case obs::ServiceEvent::Kind::kGrant: {
        const auto it = pending.find(e.job);
        require(it != pending.end(),
                "replay_events: grant of job " + std::to_string(e.job) +
                    " without a submit" + at);
        it->second.grant = e.time;
        it->second.w_lo = e.w_lo;
        it->second.w_hi = e.w_hi;
        it->second.granted = true;
        in_use += e.w_hi - e.w_lo;
        break;
      }
      case obs::ServiceEvent::Kind::kStart:
      case obs::ServiceEvent::Kind::kRetune:
        break;
      case obs::ServiceEvent::Kind::kComplete: {
        const auto it = pending.find(e.job);
        require(it != pending.end() && it->second.granted,
                "replay_events: complete of job " + std::to_string(e.job) +
                    " without a grant" + at);
        const Pending& p = it->second;
        JobRecord record;
        record.job.id = e.job;
        record.job.tenant = p.tenant;
        record.job.width = p.w_hi - p.w_lo;
        record.job.arrival = p.arrival;
        record.lease = net::slice_lease(p.w_lo, p.w_hi - p.w_lo, p.tenant);
        record.grant = p.grant;
        record.completion = e.time;
        records.push_back(std::move(record));
        require(in_use >= p.w_hi - p.w_lo,
                "replay_events: release exceeds wavelengths in use" + at);
        in_use -= p.w_hi - p.w_lo;
        pending.erase(it);
        break;
      }
    }
    out.peak_queue_depth = std::max(out.peak_queue_depth, depth);
    depth_mean.step(e.time, static_cast<double>(depth));
    util_mean.step(e.time,
                   static_cast<double>(in_use) / static_cast<double>(fabric));
    out.queue_depth.push(e.time, static_cast<double>(depth));
    out.wavelengths_in_use.push(e.time, static_cast<double>(in_use));
  }
  require(pending.empty(),
          "replay_events: " + std::to_string(pending.size()) +
              " job(s) never completed in the log");

  out.report = summarize_records(policy_from_string(log.context().policy),
                                 fabric, std::move(records));
  out.mean_queue_depth = depth_mean.mean(first, last);
  out.mean_utilization = util_mean.mean(first, last);
  if (out.report.records.empty()) {
    out.verdict = "empty";
  } else {
    double service_sum = 0.0;
    for (const JobRecord& r : out.report.records) {
      service_sum += r.service_time().count();
    }
    const Seconds mean_service(
        service_sum / static_cast<double>(out.report.records.size()));
    out.verdict = out.report.mean_queue_wait > mean_service ? "queue-bound"
                                                            : "service-bound";
  }
  return out;
}

}  // namespace wrht::svc
