// Seeded synthetic workload generator for the shared-fabric service.
//
// Two arrival regimes over the dnn zoo models:
//   * Poisson — independent exponential inter-arrival gaps at a chosen
//     offered load.
//   * heavy-tailed bursty — the same Poisson baseline, but each arrival
//     may open a burst (a run of near-simultaneous jobs) and the gaps
//     between bursts stretch by a bounded-Pareto factor. Mean load is
//     comparable; the tail is what separates admission policies.
//
// Everything draws from one wrht::Rng, so a (config, seed) pair is a
// reproducible trace — the policy bake-off bench compares policies on
// byte-identical offered workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "wrht/svc/job.hpp"

namespace wrht::svc {

struct WorkloadConfig {
  std::uint32_t num_jobs = 64;
  std::uint32_t num_tenants = 4;
  /// Ranks per job (every job spans the same machine pool).
  std::uint32_t num_nodes = 64;
  /// Fabric width the slice demands are drawn against: jobs request
  /// fabric/8, fabric/4, fabric/2 or the full fabric.
  std::uint32_t fabric_wavelengths = 64;
  /// Mean Poisson inter-arrival gap; smaller = higher offered load.
  Seconds mean_interarrival{0.05};
  /// Probability an arrival opens a burst of `burst_length` jobs landing
  /// ~simultaneously. 0 keeps the trace pure Poisson.
  double burstiness = 0.0;
  std::uint32_t burst_length = 4;
  /// Gradient syncs per job, uniform in [min_iterations, max_iterations].
  std::uint32_t min_iterations = 1;
  std::uint32_t max_iterations = 3;
  std::uint64_t seed = 2023;
};

/// Generates `config.num_jobs` jobs in arrival order. Models cycle through
/// the paper's evaluation set (BEiT-L, VGG16, AlexNet, ResNet50) with the
/// payload drawn from the model's real gradient size; tenants, widths,
/// priorities and iteration counts are drawn from the seeded Rng.
[[nodiscard]] std::vector<Job> generate_workload(const WorkloadConfig& config);

}  // namespace wrht::svc
