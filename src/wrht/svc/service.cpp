#include "wrht/svc/service.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "wrht/common/error.hpp"
#include "wrht/common/stats.hpp"
#include "wrht/prof/prof.hpp"

namespace wrht::svc {

WavelengthAllocator::WavelengthAllocator(std::uint32_t fabric_width)
    : fabric_(fabric_width) {
  require(fabric_ >= 1, "WavelengthAllocator: empty fabric");
  free_.push_back(Interval{0, fabric_});
}

bool WavelengthAllocator::fits(std::uint32_t width) const {
  for (const Interval& iv : free_) {
    if (iv.hi - iv.lo >= width) return true;
  }
  return false;
}

std::optional<std::uint32_t> WavelengthAllocator::allocate(
    std::uint32_t width) {
  require(width >= 1, "WavelengthAllocator: zero-width allocation");
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].hi - free_[i].lo < width) continue;
    const std::uint32_t lo = free_[i].lo;
    free_[i].lo += width;
    if (free_[i].lo == free_[i].hi) {
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return lo;
  }
  return std::nullopt;
}

void WavelengthAllocator::release(std::uint32_t w_lo, std::uint32_t width) {
  require(width >= 1 && w_lo + width <= fabric_,
          "WavelengthAllocator: release outside the fabric");
  const Interval freed{w_lo, w_lo + width};
  // Insertion point: first free interval at or past the freed slice.
  std::size_t i = 0;
  while (i < free_.size() && free_[i].lo < freed.lo) ++i;
  require((i == 0 || free_[i - 1].hi <= freed.lo) &&
              (i == free_.size() || freed.hi <= free_[i].lo),
          "WavelengthAllocator: double free or overlapping release");
  free_.insert(free_.begin() + static_cast<std::ptrdiff_t>(i), freed);
  // Coalesce with the right neighbour, then the left.
  if (i + 1 < free_.size() && free_[i].hi == free_[i + 1].lo) {
    free_[i].hi = free_[i + 1].hi;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
  }
  if (i > 0 && free_[i - 1].hi == free_[i].lo) {
    free_[i - 1].hi = free_[i].hi;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

std::uint32_t WavelengthAllocator::free_width() const {
  std::uint32_t total = 0;
  for (const Interval& iv : free_) total += iv.hi - iv.lo;
  return total;
}

std::string TenantStats::bottleneck() const {
  return mean_queue_wait > mean_service_time ? "queue-bound"
                                             : "service-bound";
}

std::string ServiceReport::to_string() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "policy=%s fabric=%uλ jobs=%zu makespan=%.3fs util=%.1f%% "
                "p50_jct=%.3fs p99_jct=%.3fs mean_wait=%.3fs\n",
                svc::to_string(policy).c_str(), fabric_wavelengths,
                records.size(), makespan.count(), utilization * 100.0,
                p50_jct.count(), p99_jct.count(), mean_queue_wait.count());
  out += line;
  std::snprintf(line, sizeof(line), "%-8s %5s %10s %10s %11s %11s %s\n",
                "tenant", "jobs", "p50_jct", "p99_jct", "mean_wait",
                "mean_svc", "bottleneck");
  out += line;
  for (const TenantStats& t : tenants) {
    std::snprintf(line, sizeof(line),
                  "%-8u %5llu %9.3fs %9.3fs %10.3fs %10.3fs %s\n", t.tenant,
                  static_cast<unsigned long long>(t.jobs), t.p50_jct.count(),
                  t.p99_jct.count(), t.mean_queue_wait.count(),
                  t.mean_service_time.count(), t.bottleneck().c_str());
    out += line;
  }
  return out;
}

FabricService::FabricService(ServiceConfig config)
    : config_(std::move(config)),
      policy_(make_policy(config_.policy)),
      allocator_(config_.fabric_wavelengths) {
  simulator_.set_counters(config_.counters);
}

std::pair<Seconds, plan::CandidateKind> FabricService::price_iteration(
    const Job& job) const {
  plan::PlannerOptions options = config_.planner;
  options.wavelengths = job.width;
  std::optional<std::pair<Seconds, plan::CandidateKind>> best;
  for (const plan::CandidateKind kind :
       {plan::CandidateKind::kWrht, plan::CandidateKind::kFlatAllToAll,
        plan::CandidateKind::kStaticRing}) {
    const plan::Candidate c =
        plan::predict(kind, job.num_nodes, job.elements, options);
    if (!c.feasible) continue;
    // Ties go to the earlier enum value, matching plan_allreduce().
    if (!best || c.predicted_time < best->first) {
      best = {c.predicted_time, kind};
    }
  }
  require(best.has_value(), "FabricService: no feasible all-reduce plan for "
                            "job at width " +
                                std::to_string(job.width));
  return *best;
}

void FabricService::try_admit() {
  AdmissionContext ctx;
  ctx.fits = [this](std::uint32_t width) { return allocator_.fits(width); };
  ctx.weighted_consumption = [this](std::uint32_t tenant) {
    const auto it = consumed_.find(tenant);
    const double consumed = it == consumed_.end() ? 0.0 : it->second;
    const auto weight = config_.tenant_weights.find(tenant);
    return consumed /
           (weight == config_.tenant_weights.end() ? 1.0 : weight->second);
  };

  for (std::size_t picked = policy_->select(queue_, ctx);
       picked != AdmissionPolicy::kNone;
       picked = policy_->select(queue_, ctx)) {
    Job job = std::move(queue_[picked]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(picked));

    const std::optional<std::uint32_t> w_lo = allocator_.allocate(job.width);
    require(w_lo.has_value(),
            "FabricService: policy admitted a job that does not fit");

    JobRecord record;
    record.lease = net::slice_lease(*w_lo, job.width, job.tenant);
    const auto [iteration_time, algorithm] = price_iteration(job);
    record.algorithm = algorithm;
    record.grant = simulator_.now();
    const Seconds service(iteration_time.count() * job.iterations);
    record.completion = record.grant + service;
    // Charge the grant immediately so weighted-fair sees in-flight work.
    consumed_[job.tenant] += static_cast<double>(job.width) * service.count();
    record.job = std::move(job);
    if (config_.counters != nullptr) config_.counters->add("svc.grants", 1);

    simulator_.schedule_in(service, [this, record]() {
      allocator_.release(record.lease.w_lo, record.job.width);
      completed_.push_back(record);
      if (config_.counters != nullptr) {
        config_.counters->add("svc.completions", 1);
      }
      try_admit();
    });
  }
}

ServiceReport FabricService::run(const std::vector<Job>& jobs) {
  const prof::ScopedTimer timer("svc.run");
  // Long-lived simulator, fresh run: satellite state rewinds, the
  // lifetime events_fired counter keeps counting.
  simulator_.reset();
  allocator_ = WavelengthAllocator(config_.fabric_wavelengths);
  queue_.clear();
  completed_.clear();
  consumed_.clear();

  for (const Job& job : jobs) {
    require(job.num_nodes >= 2, "FabricService: job needs >= 2 nodes");
    require(job.iterations >= 1, "FabricService: job needs >= 1 iteration");
    require(job.width >= 1 &&
                job.width <= config_.fabric_wavelengths,
            "FabricService: job " + std::to_string(job.id) + " wants " +
                std::to_string(job.width) + " of " +
                std::to_string(config_.fabric_wavelengths) + " wavelengths");
    simulator_.schedule_at(job.arrival, [this, job]() {
      queue_.push_back(job);
      if (config_.counters != nullptr) config_.counters->add("svc.arrivals", 1);
      try_admit();
    });
  }
  simulator_.run();
  require(queue_.empty(), "FabricService: run ended with jobs still queued");

  ServiceReport report;
  report.policy = config_.policy;
  report.fabric_wavelengths = config_.fabric_wavelengths;
  report.records = completed_;
  if (report.records.empty()) return report;

  std::vector<double> jct;
  double wait_sum = 0.0;
  double wavelength_seconds = 0.0;
  std::map<std::uint32_t, std::vector<const JobRecord*>> by_tenant;
  for (const JobRecord& r : report.records) {
    jct.push_back(r.jct().count());
    wait_sum += r.queue_wait().count();
    wavelength_seconds +=
        static_cast<double>(r.job.width) * r.service_time().count();
    report.makespan = std::max(report.makespan, r.completion);
    by_tenant[r.job.tenant].push_back(&r);
  }
  report.p50_jct = Seconds(percentile(jct, 0.5));
  report.p99_jct = Seconds(percentile(jct, 0.99));
  report.mean_queue_wait =
      Seconds(wait_sum / static_cast<double>(report.records.size()));
  if (report.makespan.count() > 0.0) {
    report.utilization =
        wavelength_seconds /
        (static_cast<double>(config_.fabric_wavelengths) *
         report.makespan.count());
  }

  for (const auto& [tenant, records] : by_tenant) {
    TenantStats stats;
    stats.tenant = tenant;
    stats.jobs = records.size();
    std::vector<double> tenant_jct;
    double wait = 0.0;
    double service = 0.0;
    for (const JobRecord* r : records) {
      tenant_jct.push_back(r->jct().count());
      wait += r->queue_wait().count();
      service += r->service_time().count();
      stats.wavelength_seconds +=
          static_cast<double>(r->job.width) * r->service_time().count();
    }
    const auto n = static_cast<double>(records.size());
    stats.p50_jct = Seconds(percentile(tenant_jct, 0.5));
    stats.p99_jct = Seconds(percentile(tenant_jct, 0.99));
    stats.mean_queue_wait = Seconds(wait / n);
    stats.mean_service_time = Seconds(service / n);
    report.tenants.push_back(std::move(stats));
  }
  return report;
}

}  // namespace wrht::svc
