#include "wrht/svc/service.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "wrht/common/error.hpp"
#include "wrht/common/stats.hpp"
#include "wrht/obs/event_log.hpp"
#include "wrht/obs/metrics.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/prof/prof.hpp"

namespace wrht::svc {

WavelengthAllocator::WavelengthAllocator(std::uint32_t fabric_width)
    : fabric_(fabric_width) {
  require(fabric_ >= 1, "WavelengthAllocator: empty fabric");
  free_.push_back(Interval{0, fabric_});
}

bool WavelengthAllocator::fits(std::uint32_t width) const {
  for (const Interval& iv : free_) {
    if (iv.hi - iv.lo >= width) return true;
  }
  return false;
}

std::optional<std::uint32_t> WavelengthAllocator::allocate(
    std::uint32_t width) {
  require(width >= 1, "WavelengthAllocator: zero-width allocation");
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].hi - free_[i].lo < width) continue;
    const std::uint32_t lo = free_[i].lo;
    free_[i].lo += width;
    if (free_[i].lo == free_[i].hi) {
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return lo;
  }
  return std::nullopt;
}

void WavelengthAllocator::release(std::uint32_t w_lo, std::uint32_t width) {
  require(width >= 1 && w_lo + width <= fabric_,
          "WavelengthAllocator: release outside the fabric");
  const Interval freed{w_lo, w_lo + width};
  // Insertion point: first free interval at or past the freed slice.
  std::size_t i = 0;
  while (i < free_.size() && free_[i].lo < freed.lo) ++i;
  require((i == 0 || free_[i - 1].hi <= freed.lo) &&
              (i == free_.size() || freed.hi <= free_[i].lo),
          "WavelengthAllocator: double free or overlapping release");
  free_.insert(free_.begin() + static_cast<std::ptrdiff_t>(i), freed);
  // Coalesce with the right neighbour, then the left.
  if (i + 1 < free_.size() && free_[i].hi == free_[i + 1].lo) {
    free_[i].hi = free_[i + 1].hi;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
  }
  if (i > 0 && free_[i - 1].hi == free_[i].lo) {
    free_[i - 1].hi = free_[i].hi;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

std::uint32_t WavelengthAllocator::free_width() const {
  std::uint32_t total = 0;
  for (const Interval& iv : free_) total += iv.hi - iv.lo;
  return total;
}

std::uint32_t WavelengthAllocator::largest_free() const {
  std::uint32_t widest = 0;
  for (const Interval& iv : free_) widest = std::max(widest, iv.hi - iv.lo);
  return widest;
}

std::string TenantStats::bottleneck() const {
  return mean_queue_wait > mean_service_time ? "queue-bound"
                                             : "service-bound";
}

std::string ServiceReport::to_string() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "policy=%s fabric=%uλ jobs=%zu makespan=%.3fs util=%.1f%% "
                "p50_jct=%.3fs p99_jct=%.3fs mean_wait=%.3fs\n",
                svc::to_string(policy).c_str(), fabric_wavelengths,
                records.size(), makespan.count(), utilization * 100.0,
                p50_jct.count(), p99_jct.count(), mean_queue_wait.count());
  out += line;
  std::snprintf(line, sizeof(line), "%-8s %5s %10s %10s %11s %11s %s\n",
                "tenant", "jobs", "p50_jct", "p99_jct", "mean_wait",
                "mean_svc", "bottleneck");
  out += line;
  for (const TenantStats& t : tenants) {
    std::snprintf(line, sizeof(line),
                  "%-8u %5llu %9.3fs %9.3fs %10.3fs %10.3fs %s\n", t.tenant,
                  static_cast<unsigned long long>(t.jobs), t.p50_jct.count(),
                  t.p99_jct.count(), t.mean_queue_wait.count(),
                  t.mean_service_time.count(), t.bottleneck().c_str());
    out += line;
  }
  return out;
}

std::string slo_report(const ServiceReport& report) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "SLO attainment (policy=%s, fabric=%uλ, %zu jobs)\n",
                svc::to_string(report.policy).c_str(),
                report.fabric_wavelengths, report.records.size());
  out += line;
  std::snprintf(line, sizeof(line), "%-8s %5s %10s %10s %11s %7s\n", "tenant",
                "jobs", "target", "p99_jct", "violations", "burn");
  out += line;
  for (const TenantStats& t : report.tenants) {
    if (t.slo_target.count() > 0.0) {
      std::snprintf(line, sizeof(line),
                    "%-8u %5llu %9.3fs %9.3fs %11llu %6.1f%%%s\n", t.tenant,
                    static_cast<unsigned long long>(t.jobs),
                    t.slo_target.count(), t.p99_jct.count(),
                    static_cast<unsigned long long>(t.slo_violations),
                    t.slo_burn * 100.0, t.slo_burn > 0.0 ? "  <- burning" : "");
    } else {
      std::snprintf(line, sizeof(line), "%-8u %5llu %10s %9.3fs %11s %7s\n",
                    t.tenant, static_cast<unsigned long long>(t.jobs), "-",
                    t.p99_jct.count(), "-", "-");
    }
    out += line;
  }
  return out;
}

void print_slo_report(const ServiceReport& report) {
  const std::string out = slo_report(report);
  std::fwrite(out.data(), 1, out.size(), stdout);
}

// ---------------------------------------------------------------------------
// Telemetry: the opt-in instrument bundle. One instance lives for the
// duration of a run() when any TelemetryConfig flag is set; the disabled
// path only ever tests the null pointer.

struct FabricService::Telemetry {
  using Id = obs::MetricsRegistry::Id;

  explicit Telemetry(const TelemetryConfig& cfg)
      : config(cfg),
        metrics(obs::MetricsRegistry::Options{cfg.series_capacity}),
        trace("wrht-svc") {
    submitted = metrics.counter("svc.submitted");
    admitted = metrics.counter("svc.admitted");
    granted = metrics.counter("svc.granted");
    completed = metrics.counter("svc.completed");
    retunes = metrics.counter("svc.retuned_lanes");
    queue_depth = metrics.gauge("svc.queue_depth");
    in_use = metrics.gauge("svc.wavelengths_in_use");
    fragmentation = metrics.gauge("svc.fragmentation");
    wait_hist = metrics.histogram("svc.queue_wait_s");
    service_hist = metrics.histogram("svc.service_time_s");
    jct_hist = metrics.histogram("svc.jct_s");
    // A fully free fabric is unfragmented by convention.
    metrics.set(fragmentation, 1.0);
  }

  TelemetryConfig config;
  obs::MetricsRegistry metrics;
  obs::EventLog events;
  obs::ChromeTraceSink trace;

  Id submitted, admitted, granted, completed, retunes;
  Id queue_depth, in_use, fragmentation;
  Id wait_hist, service_hist, jct_hist;
  /// Rolling burn-rate gauge per tenant with an SLO target.
  std::map<std::uint32_t, Id> tenant_burn;
  /// Completed / SLO-missed jobs, indexed by tenant (grown on demand);
  /// on_complete runs per job, so these stay flat vectors rather than
  /// maps.
  std::vector<std::uint64_t> tenant_done;
  std::vector<std::uint64_t> tenant_missed;
  /// Admission cause, formatted once — on_admit runs per job and the
  /// policy name never changes mid-run.
  std::string admit_cause;
  /// True when the hooks append to `events` (the events export was
  /// requested, or the trace needs them as its source).
  bool record_events = false;
  /// Set once build_trace() has materialized `trace` from `events`.
  bool trace_built = false;
  /// Live sampling cadence: starts at config.sample_cadence and doubles
  /// whenever a full ring's worth of ticks has fired, so a long-makespan
  /// run degrades resolution instead of burning a tick per cadence
  /// forever (total sampler work is O(capacity * log makespan)).
  Seconds cadence{0.0};
  std::size_t ticks_at_cadence = 0;
  /// Last tenant to run on each wavelength, +1 (0 = never granted). A
  /// grant over lanes last held by another tenant is a retune: the MRRs
  /// on those lanes must re-lock to the new tenant's carriers.
  std::vector<std::uint32_t> lane_owner;
  /// Jobs submitted to run() but not yet completed; the periodic sampler
  /// stops rescheduling itself when this reaches zero so the simulator
  /// can drain.
  std::uint64_t outstanding = 0;
};

FabricService::FabricService(ServiceConfig config)
    : config_(std::move(config)),
      policy_(make_policy(config_.policy)),
      allocator_(config_.fabric_wavelengths) {
  simulator_.set_counters(config_.counters);
}

FabricService::~FabricService() = default;

const obs::MetricsRegistry* FabricService::metrics() const {
  return telemetry_ && telemetry_->config.metrics ? &telemetry_->metrics
                                                  : nullptr;
}

const obs::EventLog* FabricService::event_log() const {
  return telemetry_ && telemetry_->config.events ? &telemetry_->events
                                                 : nullptr;
}

const obs::ChromeTraceSink* FabricService::trace() const {
  if (!telemetry_ || !telemetry_->config.trace) return nullptr;
  // The trace is an export artifact: it is materialized from the event
  // log on first access instead of span-by-span inside the simulation
  // hooks, so the enabled run() pays only for recording events.
  if (!telemetry_->trace_built) build_trace();
  return &telemetry_->trace;
}

void FabricService::telemetry_begin(const std::vector<Job>& jobs) {
  telemetry_ = std::make_unique<Telemetry>(config_.telemetry);
  Telemetry& t = *telemetry_;
  t.outstanding = jobs.size();
  t.lane_owner.assign(config_.fabric_wavelengths, 0);
  // The JSONL header already records the policy; the cause repeats just
  // the name (short enough for SSO — this string is copied per admit).
  t.admit_cause = policy_->name();
  t.cadence = config_.telemetry.sample_cadence;
  t.events.set_context(obs::EventLog::Context{config_.fabric_wavelengths,
                                              svc::to_string(config_.policy),
                                              config_.telemetry.seed});
  // The event log doubles as the trace's source of truth, so it records
  // whenever either export is requested.
  t.record_events = t.config.events || t.config.trace;
  if (t.record_events) t.events.reserve(6 * jobs.size());
  for (const auto& [tenant, target] : config_.slo_targets) {
    (void)target;
    t.tenant_burn[tenant] =
        t.metrics.gauge("svc.tenant" + std::to_string(tenant) + ".slo_burn");
  }
}

void FabricService::telemetry_sample() {
  Telemetry& t = *telemetry_;
  t.metrics.sample(simulator_.now());
  if (t.outstanding > 0) {
    if (++t.ticks_at_cadence >= t.config.series_capacity) {
      // The ring is full at this resolution: further ticks at the same
      // cadence would only drop the oldest samples one by one. Halve the
      // resolution instead so the series keeps covering the whole run.
      t.ticks_at_cadence = 0;
      t.cadence = Seconds(t.cadence.count() * 2.0);
    }
    simulator_.schedule_in(t.cadence, [this]() { telemetry_sample(); });
  }
}

namespace {

double fragmentation_of(const WavelengthAllocator& allocator) {
  const std::uint32_t total = allocator.free_width();
  if (total == 0) return 1.0;
  return static_cast<double>(allocator.largest_free()) /
         static_cast<double>(total);
}

}  // namespace

void FabricService::on_submit(const Job& job) {
  Telemetry& t = *telemetry_;
  const Seconds now = simulator_.now();
  t.metrics.add(t.submitted);
  t.metrics.set(t.queue_depth, static_cast<double>(queue_.size()));
  if (t.record_events) {
    t.events.record(obs::ServiceEvent{obs::ServiceEvent::Kind::kSubmit, now,
                                      job.id, job.tenant, 0, 0, "arrival"});
  }
}

void FabricService::on_admit(const Job& job) {
  Telemetry& t = *telemetry_;
  t.metrics.add(t.admitted);
  t.metrics.set(t.queue_depth, static_cast<double>(queue_.size()));
  if (t.record_events) {
    t.events.record(obs::ServiceEvent{obs::ServiceEvent::Kind::kAdmit,
                                      simulator_.now(), job.id, job.tenant, 0,
                                      0, t.admit_cause});
  }
}

void FabricService::on_grant(const JobRecord& record) {
  Telemetry& t = *telemetry_;
  const Seconds now = simulator_.now();
  const std::uint32_t w_lo = record.lease.w_lo;
  const std::uint32_t w_hi = record.lease.w_hi;
  const std::uint32_t owner = record.job.tenant + 1;

  std::uint32_t retuned = 0;
  for (std::uint32_t w = w_lo; w < w_hi; ++w) {
    if (t.lane_owner[w] != 0 && t.lane_owner[w] != owner) ++retuned;
    t.lane_owner[w] = owner;
  }
  if (retuned > 0) {
    t.metrics.add(t.retunes, static_cast<double>(retuned));
    if (t.record_events) {
      t.events.record(obs::ServiceEvent{
          obs::ServiceEvent::Kind::kRetune, now, record.job.id,
          record.job.tenant, w_lo, w_hi,
          "lanes=" + std::to_string(retuned)});
    }
  }

  t.metrics.add(t.granted);
  t.metrics.set(t.in_use, static_cast<double>(config_.fabric_wavelengths -
                                              allocator_.free_width()));
  t.metrics.set(t.fragmentation, fragmentation_of(allocator_));
  if (t.record_events) {
    const std::string alg = "alg=" + plan::to_string(record.algorithm);
    t.events.record(obs::ServiceEvent{obs::ServiceEvent::Kind::kGrant, now,
                                      record.job.id, record.job.tenant, w_lo,
                                      w_hi, alg});
    t.events.record(obs::ServiceEvent{obs::ServiceEvent::Kind::kStart, now,
                                      record.job.id, record.job.tenant, w_lo,
                                      w_hi, "service"});
  }
}

void FabricService::on_complete(const JobRecord& record) {
  Telemetry& t = *telemetry_;
  const Seconds now = simulator_.now();
  t.metrics.add(t.completed);
  t.metrics.set(t.in_use, static_cast<double>(config_.fabric_wavelengths -
                                              allocator_.free_width()));
  t.metrics.set(t.fragmentation, fragmentation_of(allocator_));
  t.metrics.observe(t.wait_hist, record.queue_wait().count());
  t.metrics.observe(t.service_hist, record.service_time().count());
  t.metrics.observe(t.jct_hist, record.jct().count());

  const std::uint32_t tenant = record.job.tenant;
  if (tenant >= t.tenant_done.size()) {
    t.tenant_done.resize(tenant + 1, 0);
    t.tenant_missed.resize(tenant + 1, 0);
  }
  ++t.tenant_done[tenant];
  const auto target = config_.slo_targets.find(tenant);
  if (target != config_.slo_targets.end()) {
    if (record.jct() > target->second) ++t.tenant_missed[tenant];
    t.metrics.set(t.tenant_burn[tenant],
                  static_cast<double>(t.tenant_missed[tenant]) /
                      static_cast<double>(t.tenant_done[tenant]));
  }

  if (t.record_events) {
    t.events.record(obs::ServiceEvent{obs::ServiceEvent::Kind::kComplete, now,
                                      record.job.id, tenant,
                                      record.lease.w_lo, record.lease.w_hi,
                                      "release"});
  }
  require(t.outstanding > 0, "FabricService: completion without submission");
  --t.outstanding;
}

// Materializes the Chrome trace from the event log: one span per
// completed job on its tenant's lane, plus fabric-level counter tracks
// (queue depth, wavelengths in use, fragmentation) stepped at every
// transition. Running this once per export instead of emitting from the
// per-job hooks keeps the enabled run() overhead down to event
// recording, which svc_telemetry_tick budgets; the values are exact
// because every signal here is piecewise-constant between transitions
// and the events carry the same timestamps the hooks saw.
void FabricService::build_trace() const {
  Telemetry& t = *telemetry_;
  t.trace_built = true;

  t.trace.set_track_name(0, "fabric");
  std::set<std::uint32_t> tenants;
  std::size_t completes = 0;
  for (const obs::ServiceEvent& e : t.events.events()) {
    if (e.kind == obs::ServiceEvent::Kind::kSubmit) tenants.insert(e.tenant);
    if (e.kind == obs::ServiceEvent::Kind::kComplete) ++completes;
  }
  for (const std::uint32_t tenant : tenants) {
    t.trace.set_track_name(tenant + 1, "tenant " + std::to_string(tenant));
  }
  t.trace.reserve(completes, t.events.size());

  // Per-job state between submit and complete; the grant cause carries
  // the chosen algorithm ("alg=wrht").
  struct Open {
    Seconds submit{0.0};
    Seconds grant{0.0};
    const std::string* alg = nullptr;
  };
  std::map<std::uint64_t, Open> open;

  // Lane occupancy replica: fragmentation needs the free-interval shape,
  // not just the free count. Integer counts make the reconstructed
  // ratios bit-identical to what the live hooks computed.
  std::vector<std::uint8_t> used(config_.fabric_wavelengths, 0);
  const auto fragmentation = [&used]() -> double {
    std::uint32_t free_total = 0, largest = 0, run = 0;
    for (const std::uint8_t u : used) {
      if (u == 0) {
        ++free_total;
        largest = std::max(largest, ++run);
      } else {
        run = 0;
      }
    }
    if (free_total == 0) return 1.0;
    return static_cast<double>(largest) / static_cast<double>(free_total);
  };

  std::uint64_t depth = 0;
  std::uint32_t in_use = 0;
  // A grant recorded at the same instant as a preceding completion was
  // caused by it (the completion's release re-ran admission); a flow
  // arrow makes that head-of-line dependency visible in the trace.
  const obs::ServiceEvent* last_complete = nullptr;
  for (const obs::ServiceEvent& e : t.events.events()) {
    switch (e.kind) {
      case obs::ServiceEvent::Kind::kSubmit: {
        Open& o = open[e.job];
        o.submit = e.time;
        ++depth;
        t.trace.counter(obs::CounterSample{
            "queue depth", e.time, static_cast<double>(depth), 0});
        break;
      }
      case obs::ServiceEvent::Kind::kAdmit:
        if (depth > 0) --depth;
        break;
      case obs::ServiceEvent::Kind::kPreempt:
        ++depth;
        break;
      case obs::ServiceEvent::Kind::kGrant: {
        Open& o = open[e.job];
        o.grant = e.time;
        o.alg = &e.cause;
        for (std::uint32_t w = e.w_lo; w < e.w_hi; ++w) used[w] = 1;
        in_use += e.w_hi - e.w_lo;
        t.trace.counter(obs::CounterSample{
            "queue depth", e.time, static_cast<double>(depth), 0});
        t.trace.counter(obs::CounterSample{
            "wavelengths in use", e.time, static_cast<double>(in_use), 0});
        t.trace.counter(
            obs::CounterSample{"fragmentation", e.time, fragmentation(), 0});
        if (last_complete != nullptr && last_complete->time == e.time) {
          obs::FlowArrow arrow;
          arrow.name = "release->grant";
          arrow.category = "svc-causal";
          arrow.start = last_complete->time;
          arrow.start_track = last_complete->tenant + 1;
          arrow.finish = e.time;
          arrow.finish_track = e.tenant + 1;
          t.trace.add_flow(std::move(arrow));
        }
        break;
      }
      case obs::ServiceEvent::Kind::kStart:
      case obs::ServiceEvent::Kind::kRetune:
        break;
      case obs::ServiceEvent::Kind::kComplete: {
        const auto it = open.find(e.job);
        if (it == open.end()) break;
        const Open& o = it->second;
        obs::TraceSpan span;
        span.name = "job " + std::to_string(e.job);
        span.category = "svc-job";
        span.start = o.grant;
        span.duration = e.time - o.grant;
        span.track = e.tenant + 1;
        if (o.alg != nullptr && o.alg->rfind("alg=", 0) == 0) {
          span.args.emplace_back("alg", o.alg->substr(4));
        }
        span.num_args.emplace_back("tenant", static_cast<double>(e.tenant));
        span.num_args.emplace_back("w_lo", static_cast<double>(e.w_lo));
        span.num_args.emplace_back("w_hi", static_cast<double>(e.w_hi));
        span.num_args.emplace_back("wait_s", (o.grant - o.submit).count());
        t.trace.span(std::move(span));
        for (std::uint32_t w = e.w_lo; w < e.w_hi; ++w) used[w] = 0;
        in_use -= std::min(in_use, e.w_hi - e.w_lo);
        t.trace.counter(obs::CounterSample{
            "wavelengths in use", e.time, static_cast<double>(in_use), 0});
        t.trace.counter(
            obs::CounterSample{"fragmentation", e.time, fragmentation(), 0});
        open.erase(it);
        last_complete = &e;
        break;
      }
    }
  }
}

std::pair<Seconds, plan::CandidateKind> FabricService::price_iteration(
    const Job& job) const {
  plan::PlannerOptions options = config_.planner;
  options.wavelengths = job.width;
  std::optional<std::pair<Seconds, plan::CandidateKind>> best;
  for (const plan::CandidateKind kind :
       {plan::CandidateKind::kWrht, plan::CandidateKind::kFlatAllToAll,
        plan::CandidateKind::kStaticRing}) {
    const plan::Candidate c =
        plan::predict(kind, job.num_nodes, job.elements, options);
    if (!c.feasible) continue;
    // Ties go to the earlier enum value, matching plan_allreduce().
    if (!best || c.predicted_time < best->first) {
      best = {c.predicted_time, kind};
    }
  }
  require(best.has_value(), "FabricService: no feasible all-reduce plan for "
                            "job at width " +
                                std::to_string(job.width));
  return *best;
}

void FabricService::try_admit() {
  AdmissionContext ctx;
  ctx.fits = [this](std::uint32_t width) { return allocator_.fits(width); };
  ctx.weighted_consumption = [this](std::uint32_t tenant) {
    const auto it = consumed_.find(tenant);
    const double consumed = it == consumed_.end() ? 0.0 : it->second;
    const auto weight = config_.tenant_weights.find(tenant);
    return consumed /
           (weight == config_.tenant_weights.end() ? 1.0 : weight->second);
  };

  for (std::size_t picked = policy_->select(queue_, ctx);
       picked != AdmissionPolicy::kNone;
       picked = policy_->select(queue_, ctx)) {
    Job job = std::move(queue_[picked]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(picked));
    if (telemetry_) on_admit(job);

    const std::optional<std::uint32_t> w_lo = allocator_.allocate(job.width);
    require(w_lo.has_value(),
            "FabricService: policy admitted a job that does not fit");

    JobRecord record;
    record.lease = net::slice_lease(*w_lo, job.width, job.tenant);
    const auto [iteration_time, algorithm] = price_iteration(job);
    record.algorithm = algorithm;
    record.grant = simulator_.now();
    const Seconds service(iteration_time.count() * job.iterations);
    record.completion = record.grant + service;
    // Charge the grant immediately so weighted-fair sees in-flight work.
    consumed_[job.tenant] += static_cast<double>(job.width) * service.count();
    record.job = std::move(job);
    if (config_.counters != nullptr) config_.counters->add("svc.grants", 1);
    if (telemetry_) on_grant(record);

    simulator_.schedule_in(service, [this, record]() {
      allocator_.release(record.lease.w_lo, record.job.width);
      completed_.push_back(record);
      if (config_.counters != nullptr) {
        config_.counters->add("svc.completions", 1);
      }
      if (telemetry_) on_complete(record);
      try_admit();
    });
  }
}

ServiceReport FabricService::run(const std::vector<Job>& jobs) {
  const prof::ScopedTimer timer("svc.run");
  // Long-lived simulator, fresh run: satellite state rewinds, the
  // lifetime events_fired counter keeps counting.
  simulator_.reset();
  allocator_ = WavelengthAllocator(config_.fabric_wavelengths);
  queue_.clear();
  completed_.clear();
  consumed_.clear();
  telemetry_.reset();
  if (config_.telemetry.any()) telemetry_begin(jobs);

  for (const Job& job : jobs) {
    require(job.num_nodes >= 2, "FabricService: job needs >= 2 nodes");
    require(job.iterations >= 1, "FabricService: job needs >= 1 iteration");
    require(job.width >= 1 &&
                job.width <= config_.fabric_wavelengths,
            "FabricService: job " + std::to_string(job.id) + " wants " +
                std::to_string(job.width) + " of " +
                std::to_string(config_.fabric_wavelengths) + " wavelengths");
    simulator_.schedule_at(job.arrival, [this, job]() {
      queue_.push_back(job);
      if (config_.counters != nullptr) config_.counters->add("svc.arrivals", 1);
      if (telemetry_) on_submit(job);
      try_admit();
    });
  }
  // The sampler rides the same event queue: extra read-only events that
  // change no admission decision, scheduled after the arrivals so
  // same-instant ties resolve identically run to run.
  if (telemetry_ && config_.telemetry.metrics) {
    simulator_.schedule_at(Seconds(0.0), [this]() { telemetry_sample(); });
  }
  simulator_.run();
  require(queue_.empty(), "FabricService: run ended with jobs still queued");

  return summarize_records(config_.policy, config_.fabric_wavelengths,
                           completed_, config_.slo_targets);
}

ServiceReport summarize_records(
    PolicyKind policy, std::uint32_t fabric_wavelengths,
    std::vector<JobRecord> records,
    const std::map<std::uint32_t, Seconds>& slo_targets) {
  ServiceReport report;
  report.policy = policy;
  report.fabric_wavelengths = fabric_wavelengths;
  report.records = std::move(records);
  if (report.records.empty()) return report;

  std::vector<double> jct;
  double wait_sum = 0.0;
  double wavelength_seconds = 0.0;
  std::map<std::uint32_t, std::vector<const JobRecord*>> by_tenant;
  for (const JobRecord& r : report.records) {
    jct.push_back(r.jct().count());
    wait_sum += r.queue_wait().count();
    wavelength_seconds +=
        static_cast<double>(r.job.width) * r.service_time().count();
    report.makespan = std::max(report.makespan, r.completion);
    by_tenant[r.job.tenant].push_back(&r);
  }
  report.p50_jct = Seconds(percentile(jct, 0.5));
  report.p99_jct = Seconds(percentile(jct, 0.99));
  report.mean_queue_wait =
      Seconds(wait_sum / static_cast<double>(report.records.size()));
  if (report.makespan.count() > 0.0) {
    report.utilization =
        wavelength_seconds /
        (static_cast<double>(fabric_wavelengths) * report.makespan.count());
  }

  for (const auto& [tenant, tenant_records] : by_tenant) {
    TenantStats stats;
    stats.tenant = tenant;
    stats.jobs = tenant_records.size();
    std::vector<double> tenant_jct;
    double wait = 0.0;
    double service = 0.0;
    for (const JobRecord* r : tenant_records) {
      tenant_jct.push_back(r->jct().count());
      wait += r->queue_wait().count();
      service += r->service_time().count();
      stats.wavelength_seconds +=
          static_cast<double>(r->job.width) * r->service_time().count();
    }
    const auto n = static_cast<double>(tenant_records.size());
    stats.p50_jct = Seconds(percentile(tenant_jct, 0.5));
    stats.p99_jct = Seconds(percentile(tenant_jct, 0.99));
    stats.mean_queue_wait = Seconds(wait / n);
    stats.mean_service_time = Seconds(service / n);
    const auto target = slo_targets.find(tenant);
    if (target != slo_targets.end()) {
      stats.slo_target = target->second;
      for (const JobRecord* r : tenant_records) {
        if (r->jct() > stats.slo_target) ++stats.slo_violations;
      }
      stats.slo_burn =
          static_cast<double>(stats.slo_violations) / n;
    }
    report.tenants.push_back(std::move(stats));
  }
  return report;
}

}  // namespace wrht::svc
