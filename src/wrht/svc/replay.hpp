// Event-log replay: rebuild the service's accounting from svc-events-1.
//
// A JSONL event log carries enough of the run — submit, admit, grant,
// complete with timestamps, tenants, and leases — to reconstruct every
// JobRecord timeline and feed it through the same summarize_records()
// arithmetic the live service uses. Because event timestamps round-trip
// doubles exactly, the replayed ServiceReport matches the live one
// bit-for-bit (the identity bench_svc_telemetry gates on), and the
// side signals — queue-depth and wavelengths-in-use time series, peak
// depth, time-weighted utilization, and the bottleneck verdict — come
// for free for post-hoc analysis (wrht_analyze --service).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "wrht/obs/event_log.hpp"
#include "wrht/obs/metrics.hpp"
#include "wrht/svc/service.hpp"

namespace wrht::svc {

struct ReplaySummary {
  /// Rebuilt through summarize_records(), so the aggregates match the
  /// live run exactly (SLO fields excepted: targets are not in the log).
  ServiceReport report;
  /// Events per kind name, e.g. {"submit": 32, "grant": 32, ...}.
  std::map<std::string, std::uint64_t> event_counts;
  /// Signal value after each transition that moved it.
  obs::TimeSeries queue_depth;
  obs::TimeSeries wavelengths_in_use;
  std::uint64_t peak_queue_depth = 0;
  /// Time-weighted means over [first event, last completion].
  double mean_queue_depth = 0.0;
  double mean_utilization = 0.0;
  /// "queue-bound" / "service-bound", from the same wait-vs-service
  /// comparison TenantStats::bottleneck() makes, fabric-wide.
  std::string verdict;

  [[nodiscard]] std::string to_string() const;
};

/// Replays a log produced by FabricService with TelemetryConfig::events.
/// Throws InvalidArgument on an inconsistent log (grant without submit,
/// complete without grant, unknown policy name).
[[nodiscard]] ReplaySummary replay_events(const obs::EventLog& log);

}  // namespace wrht::svc
