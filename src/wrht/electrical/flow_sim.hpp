// Flow-level network simulation with progressive-filling max-min fairness.
//
// This is the same fluid model class SimGrid uses for TCP flows (the
// paper's electrical baseline simulator): every active flow gets the
// max-min fair share of its bottleneck link; when a flow finishes, shares
// are recomputed. Per-hop store-and-forward latency is added to each flow's
// own completion time.
#pragma once

#include <cstdint>
#include <vector>

namespace wrht::elec {

using LinkId = std::uint32_t;

struct FlowSpec {
  double bytes = 0.0;            ///< payload to drain
  std::vector<LinkId> links;     ///< directed links traversed, in order
  double extra_latency = 0.0;    ///< seconds added to this flow's completion
};

struct FlowResult {
  /// Per-flow completion time (drain + extra_latency), seconds.
  std::vector<double> completion;
  /// max over flows of completion.
  double makespan = 0.0;
  /// Number of max-min rate recomputations performed.
  std::uint64_t rate_recomputations = 0;
  /// Links saturated by the initial fair-share allocation (the fair-share
  /// bottlenecks while every flow is still active).
  std::uint32_t bottleneck_links = 0;
};

class FlowLevelSimulator {
 public:
  /// `link_capacity[l]` is the drain rate of link l in bytes per second.
  explicit FlowLevelSimulator(std::vector<double> link_capacity);

  /// Runs all flows starting simultaneously at t = 0.
  [[nodiscard]] FlowResult run(const std::vector<FlowSpec>& flows) const;

  /// One-shot max-min fair allocation for the given flows (all active);
  /// exposed for tests and utilization accounting. Returns bytes/s rates.
  [[nodiscard]] std::vector<double> max_min_rates(
      const std::vector<FlowSpec>& flows) const;

 private:
  std::vector<double> capacity_;
};

}  // namespace wrht::elec
