#include "wrht/electrical/fat_tree_network.hpp"

#include <algorithm>

#include "wrht/common/error.hpp"
#include "wrht/net/backend.hpp"
#include "wrht/net/pattern_key.hpp"
#include "wrht/obs/occupancy.hpp"
#include "wrht/obs/transfer_log.hpp"

namespace wrht::elec {

namespace {

std::vector<double> link_capacities(const topo::FatTree& tree,
                                    const ElectricalConfig& config) {
  return std::vector<double>(tree.num_links(), config.bytes_per_second());
}

}  // namespace

FatTreeNetwork::FatTreeNetwork(std::uint32_t num_hosts,
                               ElectricalConfig config)
    : tree_(num_hosts, config.router_ports),
      config_(config),
      flow_sim_(link_capacities(tree_, config_)) {
  require(config.bytes_per_element >= 1,
          "FatTreeNetwork: bytes_per_element must be >= 1");
  require(config.lease.full() || config.lease_fabric_width > 0,
          "FatTreeNetwork: a sliced lease needs lease_fabric_width");
  config.lease.validate(config.lease_fabric_width);
}

FatTreeNetwork::StepTiming FatTreeNetwork::evaluate_step(
    const coll::Step& step) const {
  std::vector<FlowSpec> flows;
  flows.reserve(step.transfers.size());
  std::vector<std::uint32_t> load(tree_.num_links(), 0);
  for (const auto& t : step.transfers) {
    const auto route = tree_.route(t.src, t.dst);
    FlowSpec flow;
    flow.bytes = static_cast<double>(t.count) * config_.bytes_per_element;
    flow.links = route.links;
    flow.extra_latency = config_.router_delay.count() * route.routers;
    for (const LinkId l : flow.links) ++load[l];
    flows.push_back(std::move(flow));
  }
  std::uint32_t max_load = 0;
  for (const auto l : load) max_load = std::max(max_load, l);

  const FlowResult res = flow_sim_.run(flows);

  StepTiming timing{res.makespan, max_load, res.bottleneck_links,
                    res.rate_recomputations, {}};
  // Per-link occupancy: a link transmits until its slowest flow drains,
  // then its flows are in router processing until their completions.
  std::vector<double> busy(tree_.num_links(), 0.0);
  std::vector<double> chain(tree_.num_links(), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double drain = res.completion[i] - flows[i].extra_latency;
    for (const LinkId l : flows[i].links) {
      busy[l] = std::max(busy[l], drain);
      chain[l] = std::max(chain[l], res.completion[i]);
    }
  }
  for (LinkId l = 0; l < tree_.num_links(); ++l) {
    if (load[l] == 0) continue;
    timing.link_occ.push_back(LinkOcc{l, busy[l], chain[l], load[l]});
  }
  timing.completion = res.completion;
  timing.extra_latency.reserve(flows.size());
  for (const FlowSpec& flow : flows) {
    timing.extra_latency.push_back(flow.extra_latency);
  }
  return timing;
}

ElectricalRunResult FatTreeNetwork::execute(
    const coll::Schedule& schedule) const {
  return execute(schedule, obs::Probe{});
}

ElectricalRunResult FatTreeNetwork::execute(const coll::Schedule& schedule,
                                            const obs::Probe& probe) const {
  require(schedule.num_nodes() <= tree_.num_hosts(),
          "FatTreeNetwork: schedule spans more nodes than hosts");
  schedule.validate();

  ElectricalRunResult result;
  result.steps = schedule.num_steps();
  result.step_times.reserve(schedule.num_steps());

  const bool blame = probe.transfers != nullptr;
  if (blame) {
    obs::TransferLog::Context context;
    context.backend = "electrical-flow";
    context.reconfig_policy = "none";
    probe.transfers->set_context(std::move(context));
  }
  double now = 0.0;
  std::size_t step_index = 0;
  for (const auto& step : schedule.steps()) {
    probe.count("electrical.steps");
    if (step.transfers.empty()) {
      result.step_times.emplace_back(0.0);
      ++step_index;
      continue;
    }
    // Direction hints are optical-only; hint-variants of one (src, dst)
    // pattern share a cache entry here.
    const std::uint64_t sig = net::step_signature(step, false);
    StepTiming timing{};
    if (const auto it = pattern_cache_.find(sig); it != pattern_cache_.end()) {
      timing = it->second;
    } else {
      timing = evaluate_step(step);
      pattern_cache_.emplace(sig, timing);
    }
    result.total_flows += step.transfers.size();
    result.max_link_load = std::max(result.max_link_load, timing.max_link_load);
    result.step_times.emplace_back(timing.seconds);

    probe.count("electrical.flows", step.transfers.size());
    probe.count("electrical.rate_recomputations", timing.rate_recomputations);
    probe.count("electrical.bottleneck_links", timing.bottleneck_links);
    probe.count_max("electrical.max_link_load", timing.max_link_load);
    if (probe.trace != nullptr) {
      obs::TraceSpan span;
      span.name = step.label.empty() ? "step " + std::to_string(step_index)
                                     : step.label;
      span.category = "flow-step";
      span.start = Seconds(now);
      span.duration = Seconds(timing.seconds);
      span.args = {{"flows", std::to_string(step.transfers.size())},
                   {"max_link_load", std::to_string(timing.max_link_load)},
                   {"bottleneck_links",
                    std::to_string(timing.bottleneck_links)}};
      probe.span(span);
      probe.counter_sample("active flows", Seconds(now),
                           static_cast<double>(step.transfers.size()));
      probe.counter_sample("max link load", Seconds(now),
                           static_cast<double>(timing.max_link_load));
    }
    // Blame timeline: one single-round "fabric" lane per step; the step
    // splits into the bounding flow's router processing and the rest as
    // transmission (no reconfigurable optics, so retune is false and the
    // reconfiguration component zero).
    if (blame) {
      const auto step_id = static_cast<std::uint32_t>(step_index);
      obs::StepTrace step_trace;
      step_trace.step = step_id;
      step_trace.label = step.label.empty()
                             ? "step " + std::to_string(step_index)
                             : step.label;
      step_trace.start = Seconds(now);
      step_trace.duration = Seconds(timing.seconds);
      probe.transfers->step(std::move(step_trace));

      double processing = 0.0;
      double bounding = -1.0;
      for (std::size_t i = 0; i < timing.completion.size(); ++i) {
        if (timing.completion[i] > bounding) {
          bounding = timing.completion[i];
          processing = timing.extra_latency[i];
        }
      }
      obs::RoundTrace round;
      round.step = step_id;
      round.lane = "fabric";
      round.round = 0;
      round.start = Seconds(now);
      round.processing = Seconds(processing);
      round.serialization = Seconds(timing.seconds - processing);
      round.duration = Seconds(timing.seconds);
      round.retune = false;
      probe.transfers->round(std::move(round));

      for (std::size_t i = 0; i < step.transfers.size(); ++i) {
        const coll::Transfer& t = step.transfers[i];
        obs::TransferTrace trace;
        trace.step = step_id;
        trace.lane = "fabric";
        trace.round = 0;
        trace.src = t.src;
        trace.dst = t.dst;
        trace.elements = t.count;
        trace.start = Seconds(now);
        trace.duration = Seconds(
            i < timing.completion.size() ? timing.completion[i] : 0.0);
        probe.transfers->transfer(std::move(trace));
      }
    }
    if (probe.occupancy != nullptr) {
      const auto step_id = static_cast<std::uint32_t>(step_index);
      for (const LinkOcc& occ : timing.link_occ) {
        const auto ref =
            probe.occupancy->resource("link" + std::to_string(occ.link));
        probe.occupancy->record(ref, step_id, Seconds(now),
                                Seconds(occ.busy_s),
                                obs::OccCategory::kTransmission, occ.load);
        probe.occupancy->record(ref, step_id, Seconds(now + occ.busy_s),
                                Seconds(occ.chain_end_s - occ.busy_s),
                                obs::OccCategory::kProcessing);
        probe.occupancy->record(ref, step_id, Seconds(now + occ.chain_end_s),
                                Seconds(timing.seconds - occ.chain_end_s),
                                obs::OccCategory::kStragglerWait);
      }
    }
    now += timing.seconds;
    ++step_index;
  }
  result.total_time = Seconds(now);
  if (probe.trace != nullptr && result.total_flows > 0) {
    probe.counter_sample("active flows", result.total_time, 0.0);
    probe.counter_sample("max link load", result.total_time, 0.0);
  }
  return result;
}

RunReport ElectricalRunResult::to_report() const {
  RunReport report;
  report.backend = "electrical-flow";
  report.total_time = total_time;
  report.steps = steps;
  report.rounds = step_times.size();  // one fair-sharing round per step
  report.step_reports = net::uniform_step_reports(step_times);
  return report;
}

}  // namespace wrht::elec
