// net::Backend adapters for the electrical engines.
//
// FlowBackend wraps the flow-level fat-tree simulator (max-min fair
// sharing), PacketBackend the store-and-forward packet model; both keep
// their engine's native API intact. register_electrical_backends()
// publishes the "electrical-flow" and "electrical-packet" factories.
#pragma once

#include <cstdint>

#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/electrical/packet_sim.hpp"
#include "wrht/net/backend.hpp"
#include "wrht/net/registry.hpp"

namespace wrht::elec {

class FlowBackend final : public net::Backend {
 public:
  /// `collect_utilization` makes every execute() sample per-link occupancy
  /// and fill the report's utilization fields.
  FlowBackend(std::uint32_t num_hosts, ElectricalConfig config,
              bool collect_utilization = false);

  [[nodiscard]] std::string name() const override {
    return "electrical-flow";
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] net::BackendCapabilities capabilities() const override;
  using net::Backend::execute;
  [[nodiscard]] RunReport execute(const coll::Schedule& schedule,
                                  const obs::Probe& probe) const override;

  [[nodiscard]] const FatTreeNetwork& network() const { return network_; }

 private:
  FatTreeNetwork network_;
  bool collect_utilization_;
};

class PacketBackend final : public net::Backend {
 public:
  PacketBackend(std::uint32_t num_hosts, ElectricalConfig config,
                bool collect_utilization = false);

  [[nodiscard]] std::string name() const override {
    return "electrical-packet";
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] net::BackendCapabilities capabilities() const override;
  using net::Backend::execute;
  [[nodiscard]] RunReport execute(const coll::Schedule& schedule,
                                  const obs::Probe& probe) const override;

  [[nodiscard]] const PacketLevelNetwork& network() const { return network_; }

 private:
  PacketLevelNetwork network_;
  bool collect_utilization_;
};

/// Maps the portable config onto an ElectricalConfig (rate convention;
/// Table 2 defaults for everything else).
[[nodiscard]] ElectricalConfig electrical_config_from(
    const net::BackendConfig& config);

/// Registers "electrical-flow" and "electrical-packet" in `registry`.
void register_electrical_backends(net::BackendRegistry& registry);

}  // namespace wrht::elec
