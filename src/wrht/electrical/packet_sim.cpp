#include "wrht/electrical/packet_sim.hpp"

#include <algorithm>

#include "wrht/common/error.hpp"
#include "wrht/net/backend.hpp"
#include "wrht/obs/occupancy.hpp"
#include "wrht/obs/transfer_log.hpp"
#include "wrht/prof/prof.hpp"
#include "wrht/sim/simulator.hpp"

namespace wrht::elec {

PacketLevelNetwork::PacketLevelNetwork(std::uint32_t num_hosts,
                                       ElectricalConfig config)
    : tree_(num_hosts, config.router_ports), config_(config) {
  require(config.packet_size.count() >= 1,
          "PacketLevelNetwork: packet size must be positive");
  require(config.lease.full() || config.lease_fabric_width > 0,
          "PacketLevelNetwork: a sliced lease needs lease_fabric_width");
  config.lease.validate(config.lease_fabric_width);
}

namespace {

struct Packet {
  std::uint32_t route_index = 0;  ///< into the per-transfer route table
  std::uint32_t hop = 0;          ///< next link to traverse
  double bytes = 0.0;             ///< this payload (last may be short)
};

}  // namespace

double PacketLevelNetwork::simulate_step(const coll::Step& step,
                                         std::uint64_t& packets,
                                         std::uint64_t& events,
                                         const obs::Probe& probe,
                                         double step_start,
                                         std::uint32_t step_index,
                                         std::vector<double>* transfer_done)
    const {
  sim::Simulator simulator;
  simulator.set_counters(probe.counters);
  std::vector<double> next_free(tree_.num_links(), 0.0);
  const double rate = config_.bytes_per_second();
  const double router_delay = config_.router_delay.count();
  const double packet_bytes =
      static_cast<double>(config_.packet_size.count());
  double makespan = 0.0;

  // Dense link -> sampler handle map, resolved lazily; the sampler
  // coalesces the back-to-back per-packet slices a busy link produces.
  std::vector<obs::OccupancySampler::ResourceRef> link_refs;
  if (probe.occupancy != nullptr) {
    link_refs.assign(tree_.num_links(), UINT32_MAX);
  }
  const auto link_ref = [&](topo::LinkId link) {
    if (link_refs[link] == UINT32_MAX) {
      link_refs[link] =
          probe.occupancy->resource("link" + std::to_string(link));
    }
    return link_refs[link];
  };

  // Packets live in a pool indexed by id and share one route per transfer,
  // so event lambdas capture {&arrive, index} — 16 bytes, inside
  // libstdc++'s std::function small buffer — instead of a shared_ptr whose
  // 24-byte capture heap-allocates every event.
  std::vector<std::vector<topo::LinkId>> routes;
  routes.reserve(step.transfers.size());
  std::vector<Packet> pool;

  // Arrival of packet `pi` at the input queue of its next link.
  std::function<void(std::size_t)> arrive = [&](std::size_t pi) {
    Packet& packet = pool[pi];
    const std::vector<topo::LinkId>& route = routes[packet.route_index];
    const topo::LinkId link = route[packet.hop];
    const double now = simulator.now().count();
    const double tx_start = std::max(now, next_free[link]);
    const double depart = tx_start + packet.bytes / rate;
    if (probe.occupancy != nullptr) {
      probe.occupancy->record(link_ref(link), step_index,
                              Seconds(step_start + tx_start),
                              Seconds(depart - tx_start),
                              obs::OccCategory::kTransmission);
    }
    next_free[link] = depart;
    ++packet.hop;
    if (packet.hop < route.size()) {
      // Entering the next router: store-and-forward processing delay.
      simulator.schedule_at(Seconds(depart + router_delay),
                            [&arrive, pi] { arrive(pi); });
    } else {
      makespan = std::max(makespan, depart);
      if (transfer_done != nullptr) {
        (*transfer_done)[packet.route_index] =
            std::max((*transfer_done)[packet.route_index], depart);
      }
    }
  };
  if (transfer_done != nullptr) {
    transfer_done->assign(step.transfers.size(), 0.0);
  }

  std::size_t estimated = 0;
  for (const auto& t : step.transfers) {
    const double bytes =
        static_cast<double>(t.count) * config_.bytes_per_element;
    if (bytes > 0.0) {
      estimated += static_cast<std::size_t>(bytes / packet_bytes) + 1;
    }
  }
  pool.reserve(estimated);
  simulator.reserve_events(estimated);

  for (const auto& t : step.transfers) {
    auto route = tree_.route(t.src, t.dst);
    const auto route_index = static_cast<std::uint32_t>(routes.size());
    routes.push_back(std::move(route.links));
    double remaining =
        static_cast<double>(t.count) * config_.bytes_per_element;
    while (remaining > 0.0) {
      const std::size_t pi = pool.size();
      Packet& packet = pool.emplace_back();
      packet.route_index = route_index;
      packet.bytes = std::min(remaining, packet_bytes);
      remaining -= packet.bytes;
      ++packets;
      simulator.schedule_at(Seconds(0.0), [&arrive, pi] { arrive(pi); });
    }
  }

  {
    // Host-side phase accounting for the per-step packet DES drain.
    const prof::ScopedTimer timer("electrical.des.run");
    simulator.run();
  }
  events += simulator.events_fired();
  // Links that went quiet before the step's last packet drained are in
  // straggler wait; untouched links remain unaccounted (idle).
  if (probe.occupancy != nullptr) {
    for (topo::LinkId l = 0; l < tree_.num_links(); ++l) {
      if (next_free[l] <= 0.0) continue;
      probe.occupancy->record(link_ref(l), step_index,
                              Seconds(step_start + next_free[l]),
                              Seconds(makespan - next_free[l]),
                              obs::OccCategory::kStragglerWait);
    }
  }
  return makespan;
}

PacketRunResult PacketLevelNetwork::execute(
    const coll::Schedule& schedule) const {
  return execute(schedule, obs::Probe{});
}

PacketRunResult PacketLevelNetwork::execute(const coll::Schedule& schedule,
                                            const obs::Probe& probe) const {
  require(schedule.num_nodes() <= tree_.num_hosts(),
          "PacketLevelNetwork: schedule spans more nodes than hosts");
  schedule.validate();

  PacketRunResult result;
  result.steps = schedule.num_steps();
  result.step_times.reserve(schedule.num_steps());
  const bool blame = probe.transfers != nullptr;
  if (blame) {
    obs::TransferLog::Context context;
    context.backend = "electrical-packet";
    context.reconfig_policy = "none";
    probe.transfers->set_context(std::move(context));
  }
  std::vector<double> transfer_done;
  double total = 0.0;
  std::size_t step_index = 0;
  for (const auto& step : schedule.steps()) {
    probe.count("packet.steps");
    const std::uint64_t packets_before = result.total_packets;
    const double t =
        step.transfers.empty()
            ? 0.0
            : simulate_step(step, result.total_packets, result.events_fired,
                            probe, total,
                            static_cast<std::uint32_t>(step_index),
                            blame ? &transfer_done : nullptr);
    probe.count("packet.packets", result.total_packets - packets_before);
    // Blame timeline: one single-round "fabric" lane per step (the packet
    // model has no reconfigurable optics; the whole step is transmission).
    if (blame && !step.transfers.empty()) {
      const auto step_id = static_cast<std::uint32_t>(step_index);
      obs::StepTrace step_trace;
      step_trace.step = step_id;
      step_trace.label = step.label.empty()
                             ? "step " + std::to_string(step_index)
                             : step.label;
      step_trace.start = Seconds(total);
      step_trace.duration = Seconds(t);
      probe.transfers->step(std::move(step_trace));

      obs::RoundTrace round;
      round.step = step_id;
      round.lane = "fabric";
      round.round = 0;
      round.start = Seconds(total);
      round.serialization = Seconds(t);
      round.duration = Seconds(t);
      round.retune = false;
      probe.transfers->round(std::move(round));

      for (std::size_t i = 0; i < step.transfers.size(); ++i) {
        const coll::Transfer& tr = step.transfers[i];
        obs::TransferTrace trace;
        trace.step = step_id;
        trace.lane = "fabric";
        trace.round = 0;
        trace.src = tr.src;
        trace.dst = tr.dst;
        trace.elements = tr.count;
        trace.start = Seconds(total);
        trace.duration =
            Seconds(i < transfer_done.size() ? transfer_done[i] : 0.0);
        probe.transfers->transfer(std::move(trace));
      }
    }
    if (probe.trace != nullptr && !step.transfers.empty()) {
      obs::TraceSpan span;
      span.name = step.label.empty() ? "step " + std::to_string(step_index)
                                     : step.label;
      span.category = "packet-step";
      span.start = Seconds(total);
      span.duration = Seconds(t);
      span.args = {
          {"transfers", std::to_string(step.transfers.size())},
          {"packets", std::to_string(result.total_packets - packets_before)}};
      probe.span(span);
      probe.counter_sample(
          "packets per step", Seconds(total),
          static_cast<double>(result.total_packets - packets_before));
    }
    result.step_times.emplace_back(t);
    total += t;
    ++step_index;
  }
  result.total_time = Seconds(total);
  if (probe.trace != nullptr && result.total_packets > 0) {
    probe.counter_sample("packets per step", result.total_time, 0.0);
  }
  return result;
}

RunReport PacketRunResult::to_report() const {
  RunReport report;
  report.backend = "electrical-packet";
  report.total_time = total_time;
  report.steps = steps;
  report.rounds = step_times.size();
  report.events_fired = events_fired;
  report.step_reports = net::uniform_step_reports(step_times);
  return report;
}

}  // namespace wrht::elec
