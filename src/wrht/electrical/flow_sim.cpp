#include "wrht/electrical/flow_sim.hpp"

#include <algorithm>
#include <limits>

#include "wrht/common/error.hpp"

namespace wrht::elec {

FlowLevelSimulator::FlowLevelSimulator(std::vector<double> link_capacity)
    : capacity_(std::move(link_capacity)) {
  for (const double c : capacity_) {
    require(c > 0.0, "FlowLevelSimulator: link capacity must be positive");
  }
}

namespace {

/// Progressive filling over the subset of flows marked active.
/// rates[i] is written for every active flow i.
std::vector<double> fill_rates(const std::vector<double>& capacity,
                               const std::vector<FlowSpec>& flows,
                               const std::vector<std::uint8_t>& active) {
  std::vector<double> rates(flows.size(), 0.0);
  std::vector<double> cap_left = capacity;
  std::vector<std::uint32_t> load(capacity.size(), 0);
  std::vector<std::uint8_t> fixed(flows.size(), 0);

  std::size_t unfixed = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!active[i]) continue;
    ++unfixed;
    for (const LinkId l : flows[i].links) ++load[l];
  }

  while (unfixed > 0) {
    // Bottleneck link: smallest fair share among loaded links.
    double best_share = std::numeric_limits<double>::infinity();
    for (LinkId l = 0; l < capacity.size(); ++l) {
      if (load[l] == 0) continue;
      best_share = std::min(best_share, cap_left[l] / load[l]);
    }
    require(best_share < std::numeric_limits<double>::infinity(),
            "fill_rates: active flow without links");

    // Freeze every unfixed flow crossing a bottleneck at best_share.
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (!active[i] || fixed[i]) continue;
      bool bottlenecked = false;
      for (const LinkId l : flows[i].links) {
        if (cap_left[l] / load[l] <= best_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rates[i] = best_share;
      fixed[i] = 1;
      --unfixed;
      for (const LinkId l : flows[i].links) {
        cap_left[l] -= best_share;
        if (cap_left[l] < 0.0) cap_left[l] = 0.0;
        --load[l];
      }
    }
  }
  return rates;
}

}  // namespace

std::vector<double> FlowLevelSimulator::max_min_rates(
    const std::vector<FlowSpec>& flows) const {
  for (const auto& f : flows) {
    for (const LinkId l : f.links) {
      require(l < capacity_.size(), "max_min_rates: link id out of range");
    }
  }
  std::vector<std::uint8_t> active(flows.size(), 1);
  return fill_rates(capacity_, flows, active);
}

FlowResult FlowLevelSimulator::run(const std::vector<FlowSpec>& flows) const {
  for (const auto& f : flows) {
    require(f.bytes > 0.0, "FlowLevelSimulator: flow without payload");
    require(!f.links.empty(), "FlowLevelSimulator: flow without route");
    for (const LinkId l : f.links) {
      require(l < capacity_.size(), "FlowLevelSimulator: link out of range");
    }
  }

  FlowResult result;
  result.completion.assign(flows.size(), 0.0);

  std::vector<double> remaining(flows.size());
  std::vector<std::uint8_t> active(flows.size(), 1);
  std::size_t live = flows.size();
  for (std::size_t i = 0; i < flows.size(); ++i) remaining[i] = flows[i].bytes;

  double now = 0.0;
  while (live > 0) {
    const std::vector<double> rates = fill_rates(capacity_, flows, active);
    ++result.rate_recomputations;
    if (result.rate_recomputations == 1) {
      // Count the initial fair-share bottlenecks: links whose capacity the
      // first allocation fully consumes.
      std::vector<double> used(capacity_.size(), 0.0);
      for (std::size_t i = 0; i < flows.size(); ++i) {
        for (const LinkId l : flows[i].links) used[l] += rates[i];
      }
      for (LinkId l = 0; l < capacity_.size(); ++l) {
        if (used[l] >= capacity_[l] * (1.0 - 1e-9)) ++result.bottleneck_links;
      }
    }

    // Time until the next flow drains completely.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (!active[i]) continue;
      require(rates[i] > 0.0, "FlowLevelSimulator: starved flow");
      dt = std::min(dt, remaining[i] / rates[i]);
    }

    now += dt;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (!active[i]) continue;
      remaining[i] -= rates[i] * dt;
      if (remaining[i] <= flows[i].bytes * 1e-12 + 1e-9) {
        active[i] = 0;
        --live;
        result.completion[i] = now + flows[i].extra_latency;
        result.makespan = std::max(result.makespan, result.completion[i]);
      }
    }
  }
  return result;
}

}  // namespace wrht::elec
