#include "wrht/electrical/electrical_backend.hpp"

#include "wrht/prof/prof.hpp"

namespace wrht::elec {

FlowBackend::FlowBackend(std::uint32_t num_hosts, ElectricalConfig config,
                         bool collect_utilization)
    : network_(num_hosts, config),
      collect_utilization_(collect_utilization) {}

std::string FlowBackend::describe() const {
  return "fat-tree flow-level simulator (max-min fair sharing, barrier "
         "steps)";
}

net::BackendCapabilities FlowBackend::capabilities() const {
  net::BackendCapabilities caps;  // no hints, no RWA, no wavelengths
  caps.reports_utilization = true;
  return caps;
}

RunReport FlowBackend::execute(const coll::Schedule& schedule,
                               const obs::Probe& probe) const {
  const prof::ScopedTimer timer("backend.electrical-flow.execute");
  net::count_schedule(probe, schedule);
  const net::ScopedUtilization util(probe, collect_utilization_);
  RunReport report = network_.execute(schedule, util.probe()).to_report();
  util.finish(report);
  return report;
}

PacketBackend::PacketBackend(std::uint32_t num_hosts,
                             ElectricalConfig config,
                             bool collect_utilization)
    : network_(num_hosts, config),
      collect_utilization_(collect_utilization) {}

std::string PacketBackend::describe() const {
  return "fat-tree store-and-forward packet simulator (validation-scale "
         "ground truth)";
}

net::BackendCapabilities PacketBackend::capabilities() const {
  net::BackendCapabilities caps;
  caps.reports_utilization = true;
  return caps;
}

RunReport PacketBackend::execute(const coll::Schedule& schedule,
                                 const obs::Probe& probe) const {
  const prof::ScopedTimer timer("backend.electrical-packet.execute");
  net::count_schedule(probe, schedule);
  const net::ScopedUtilization util(probe, collect_utilization_);
  RunReport report = network_.execute(schedule, util.probe()).to_report();
  util.finish(report);
  return report;
}

ElectricalConfig electrical_config_from(const net::BackendConfig& config) {
  ElectricalConfig out;
  out.convention = config.convention;
  // The electrical fabric has no wavelengths; a lease slices its links in
  // proportion to the wavelength budget the config advertises.
  out.lease = config.lease;
  out.lease_fabric_width = config.lease.full() ? 0 : config.wavelengths;
  return out;
}

void register_electrical_backends(net::BackendRegistry& registry) {
  registry.register_backend(
      "electrical-flow",
      "fat-tree flow-level simulator (max-min fair sharing)",
      [](const net::BackendConfig& config) -> std::unique_ptr<net::Backend> {
        return std::make_unique<FlowBackend>(config.num_nodes,
                                             electrical_config_from(config),
                                             config.collect_utilization);
      });
  registry.register_backend(
      "electrical-packet",
      "fat-tree packet-level simulator (store-and-forward ground truth)",
      [](const net::BackendConfig& config) -> std::unique_ptr<net::Backend> {
        return std::make_unique<PacketBackend>(
            config.num_nodes, electrical_config_from(config),
            config.collect_utilization);
      });
}

}  // namespace wrht::elec
