// Packet-level electrical network simulation.
//
// A store-and-forward discrete-event model complementing the flow-level
// simulator: transfers are chopped into fixed-size packets (Table 2:
// 72 bytes) that queue FIFO at every directed link, serialize at the link
// rate, and pay the router processing delay at each router. Packet-level
// runs are the ground truth the fluid model approximates; the test suite
// cross-validates the two on small configurations.
#pragma once

#include <cstdint>
#include <vector>

#include "wrht/collectives/schedule.hpp"
#include "wrht/common/units.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/obs/trace.hpp"
#include "wrht/topo/fat_tree.hpp"

namespace wrht::elec {

struct PacketRunResult {
  Seconds total_time{0.0};
  std::size_t steps = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t events_fired = 0;
  std::vector<Seconds> step_times;

  /// Backend-neutral view (RunReport) of this run.
  [[nodiscard]] RunReport to_report() const;
};

class PacketLevelNetwork {
 public:
  /// Uses the same topology and ElectricalConfig as FatTreeNetwork, so the
  /// two models are directly comparable.
  PacketLevelNetwork(std::uint32_t num_hosts, ElectricalConfig config);

  [[nodiscard]] const topo::FatTree& topology() const { return tree_; }

  /// Executes the schedule with per-step barriers. Packet counts grow with
  /// payload (bytes / packet_size); intended for validation-scale runs.
  [[nodiscard]] PacketRunResult execute(const coll::Schedule& schedule) const;

  /// Observed variant: one trace span per step plus "packet.*" counters.
  [[nodiscard]] PacketRunResult execute(const coll::Schedule& schedule,
                                        const obs::Probe& probe) const;

 private:
  /// `step_start`/`step_index` place this step's occupancy intervals on
  /// the run timeline (the internal event clock restarts at 0 per step).
  /// `transfer_done` (when non-null) receives each transfer's last-packet
  /// arrival time relative to the step start, for blame TransferTraces.
  [[nodiscard]] double simulate_step(const coll::Step& step,
                                     std::uint64_t& packets,
                                     std::uint64_t& events,
                                     const obs::Probe& probe,
                                     double step_start,
                                     std::uint32_t step_index,
                                     std::vector<double>* transfer_done) const;

  topo::FatTree tree_;
  ElectricalConfig config_;
};

}  // namespace wrht::elec
