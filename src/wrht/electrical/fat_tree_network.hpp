// Electrical fat-tree interconnect simulator (the paper's SimGrid baseline).
//
// Executes a coll::Schedule with barrier semantics: all transfers of a step
// become simultaneous flows routed host-edge(-core-edge)-host; the step
// lasts until the slowest flow drains under max-min fair sharing, plus the
// per-router store-and-forward delay (Table 2: 40 Gb/s links, 25 us router
// delay, 32-port routers, shortest-path routing). Structurally identical
// steps hit a pattern cache, mirroring the optical simulator.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "wrht/collectives/schedule.hpp"
#include "wrht/common/units.hpp"
#include "wrht/electrical/flow_sim.hpp"
#include "wrht/net/rate_convention.hpp"
#include "wrht/net/resource_lease.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/obs/trace.hpp"
#include "wrht/topo/fat_tree.hpp"

namespace wrht::elec {

struct ElectricalConfig {
  BitsPerSecond link_rate{40e9};   ///< per directed link
  Seconds router_delay{25e-6};     ///< per traversed router
  Bytes packet_size{72};
  std::uint32_t bytes_per_element = 4;
  std::uint32_t router_ports = 32;

  /// The same net::RateConvention knob as optics::OpticalConfig — the
  /// paper's numerics drain d bytes against B = 40e9; keep both simulators
  /// on the same convention for a fair optical/electrical comparison.
  net::RateConvention convention = net::RateConvention::kPaperConvention;

  /// Multi-tenant link share (see net/resource_lease.hpp): the fabric has
  /// no wavelength notion, so a lease of k wavelengths out of a
  /// `lease_fabric_width`-wide fabric grants this job k/width of every
  /// link's bandwidth — the fair share a wavelength-proportional slicer
  /// converges to. The default full lease (or width 0) leaves every link
  /// at full rate, byte-identical to pre-lease runs.
  net::ResourceLease lease{};
  std::uint32_t lease_fabric_width = 0;

  [[nodiscard]] double bytes_per_second() const {
    return net::effective_bytes_per_second(link_rate.count(), convention) *
           lease.share(lease_fabric_width);
  }

  // Fluent builders mirroring optics::OpticalConfig; aggregate
  // initialization keeps working.
  ElectricalConfig& with_link_rate(BitsPerSecond v) {
    link_rate = v;
    return *this;
  }
  ElectricalConfig& with_router_delay(Seconds v) {
    router_delay = v;
    return *this;
  }
  ElectricalConfig& with_packet_size(Bytes v) {
    packet_size = v;
    return *this;
  }
  ElectricalConfig& with_bytes_per_element(std::uint32_t v) {
    bytes_per_element = v;
    return *this;
  }
  ElectricalConfig& with_router_ports(std::uint32_t v) {
    router_ports = v;
    return *this;
  }
  ElectricalConfig& with_convention(net::RateConvention v) {
    convention = v;
    return *this;
  }
  ElectricalConfig& with_lease(net::ResourceLease v,
                               std::uint32_t fabric_width) {
    lease = v;
    lease_fabric_width = fabric_width;
    return *this;
  }
};

struct ElectricalRunResult {
  Seconds total_time{0.0};
  std::size_t steps = 0;
  std::uint64_t total_flows = 0;
  /// Largest number of concurrent flows sharing one link in any step.
  std::uint32_t max_link_load = 0;
  std::vector<Seconds> step_times;

  /// Backend-neutral view (RunReport) of this run.
  [[nodiscard]] RunReport to_report() const;
};

class FatTreeNetwork {
 public:
  FatTreeNetwork(std::uint32_t num_hosts, ElectricalConfig config);

  [[nodiscard]] const topo::FatTree& topology() const { return tree_; }
  [[nodiscard]] const ElectricalConfig& config() const { return config_; }

  [[nodiscard]] ElectricalRunResult execute(
      const coll::Schedule& schedule) const;

  /// Observed variant: one trace span per step plus "electrical.*"
  /// counters (flows, link load, fair-share bottlenecks, recomputations).
  [[nodiscard]] ElectricalRunResult execute(const coll::Schedule& schedule,
                                            const obs::Probe& probe) const;

 private:
  /// One directed link's account within a step: it transmits until its
  /// slowest flow drains, then the flow chain is in router processing
  /// until the last completion it feeds.
  struct LinkOcc {
    LinkId link = 0;
    double busy_s = 0.0;       ///< max drain time over the link's flows
    double chain_end_s = 0.0;  ///< max completion (drain + router latency)
    std::uint32_t load = 0;    ///< flows sharing the link
  };

  struct StepTiming {
    double seconds = 0.0;
    std::uint32_t max_link_load = 0;
    std::uint32_t bottleneck_links = 0;
    std::uint64_t rate_recomputations = 0;
    /// Per-loaded-link occupancy, link-id order (pattern-cached with the
    /// rest of the timing; only links with traffic appear).
    std::vector<LinkOcc> link_occ;
    /// Per-flow completion and router-latency share, transfer order, for
    /// blame TransferTraces and the step's transmission/processing split.
    std::vector<double> completion;
    std::vector<double> extra_latency;
  };
  [[nodiscard]] StepTiming evaluate_step(const coll::Step& step) const;

  topo::FatTree tree_;
  ElectricalConfig config_;
  FlowLevelSimulator flow_sim_;
  mutable std::unordered_map<std::uint64_t, StepTiming> pattern_cache_;
};

}  // namespace wrht::elec
