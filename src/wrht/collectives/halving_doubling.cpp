#include "wrht/collectives/halving_doubling.hpp"

#include <bit>
#include <vector>

#include "wrht/common/error.hpp"

namespace wrht::coll {

namespace {

/// Element range covering the contiguous run of `count` chunks starting at
/// `first` (chunks are the balanced p2-way split of the vector).
struct Range {
  std::size_t offset;
  std::size_t length;
};
Range chunk_run(std::size_t elements, std::uint32_t p2, std::uint32_t first,
                std::uint32_t count) {
  const ChunkRange head = chunk_range(elements, p2, first);
  const ChunkRange tail = chunk_range(elements, p2, first + count - 1);
  return Range{head.offset, tail.offset + tail.count - head.offset};
}

}  // namespace

Schedule halving_doubling_allreduce(std::uint32_t num_nodes,
                                    std::size_t elements) {
  require(num_nodes >= 2, "halving_doubling: need at least 2 nodes");
  require(elements >= num_nodes,
          "halving_doubling: need at least one element per chunk");
  Schedule sched("halving_doubling", num_nodes, elements);

  const std::uint32_t p2 = std::bit_floor(num_nodes);
  const std::uint32_t r = num_nodes - p2;
  const std::uint32_t levels = std::bit_width(p2) - 1;

  if (r > 0) {
    Step& step = sched.add_step("pre-fold");
    for (std::uint32_t i = 1; i < 2 * r; i += 2) {
      step.transfers.push_back(Transfer{i, i - 1, 0, elements,
                                        TransferKind::kReduce, std::nullopt});
    }
  }
  std::vector<NodeId> node_of(p2);
  for (std::uint32_t rank = 0; rank < p2; ++rank) {
    node_of[rank] = rank < r ? 2 * rank : rank + r;
  }

  // Recursive halving reduce-scatter: each node's owned chunk-run halves
  // every step; it ends owning exactly chunk `rank`.
  // own[rank] = {first chunk, chunk count} of the currently owned run.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> own(
      p2, {0u, p2});
  for (std::uint32_t s = 0; s < levels; ++s) {
    const std::uint32_t mask = p2 >> (s + 1);  // MSB first
    Step& step = sched.add_step("halving 2^" + std::to_string(levels - s - 1));
    for (std::uint32_t rank = 0; rank < p2; ++rank) {
      const std::uint32_t partner = rank ^ mask;
      auto& [first, count] = own[rank];
      const std::uint32_t half = count / 2;
      // Bit set -> keep the upper half of the current run.
      const bool keep_upper = (rank & mask) != 0;
      const std::uint32_t keep_first = keep_upper ? first + half : first;
      const std::uint32_t send_first = keep_upper ? first : first + half;
      const Range send = chunk_run(elements, p2, send_first, half);
      if (send.length > 0) {
        step.transfers.push_back(Transfer{node_of[rank], node_of[partner],
                                          send.offset, send.length,
                                          TransferKind::kReduce,
                                          std::nullopt});
      }
      first = keep_first;
      count = half;
    }
  }

  // Recursive doubling all-gather: reverse order, ranges double.
  for (std::uint32_t s = levels; s-- > 0;) {
    const std::uint32_t mask = p2 >> (s + 1);
    Step& step = sched.add_step("doubling 2^" +
                                std::to_string(levels - s - 1));
    for (std::uint32_t rank = 0; rank < p2; ++rank) {
      const std::uint32_t partner = rank ^ mask;
      auto& [first, count] = own[rank];
      const Range send = chunk_run(elements, p2, first, count);
      if (send.length > 0) {
        step.transfers.push_back(Transfer{node_of[rank], node_of[partner],
                                          send.offset, send.length,
                                          TransferKind::kCopy, std::nullopt});
      }
      // After the exchange both sides own the doubled run.
      const bool keep_upper = (rank & mask) != 0;
      first = keep_upper ? first - count : first;
      count *= 2;
    }
  }

  if (r > 0) {
    Step& step = sched.add_step("post-copy");
    for (std::uint32_t i = 1; i < 2 * r; i += 2) {
      step.transfers.push_back(
          Transfer{i - 1, i, 0, elements, TransferKind::kCopy, std::nullopt});
    }
  }
  return sched;
}

std::uint64_t halving_doubling_steps(std::uint32_t num_nodes) {
  require(num_nodes >= 2, "halving_doubling_steps: need >= 2 nodes");
  const std::uint32_t p2 = std::bit_floor(num_nodes);
  const std::uint64_t levels = std::bit_width(p2) - 1;
  return num_nodes == p2 ? 2 * levels : 2 * levels + 2;
}

}  // namespace wrht::coll
