#include "wrht/collectives/ring_primitives.hpp"

#include "wrht/common/error.hpp"

namespace wrht::coll {

Schedule ring_reduce_scatter(std::uint32_t num_nodes, std::size_t elements) {
  require(num_nodes >= 2, "ring_reduce_scatter: need at least 2 nodes");
  require(elements >= num_nodes,
          "ring_reduce_scatter: need at least one element per chunk");
  Schedule sched("ring_reduce_scatter", num_nodes, elements);
  const std::uint32_t n = num_nodes;
  // At step t node i forwards chunk (i - 1 - t) mod n clockwise; after
  // n-1 steps node i fully owns chunk i.
  for (std::uint32_t t = 0; t + 1 < n; ++t) {
    Step& step = sched.add_step("reduce-scatter " + std::to_string(t));
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t chunk = (i + 2 * n - 1 - t % n) % n;
      const ChunkRange r = chunk_range(elements, n, chunk);
      if (r.count == 0) continue;
      step.transfers.push_back(Transfer{i, (i + 1) % n, r.offset, r.count,
                                        TransferKind::kReduce,
                                        topo::Direction::kClockwise});
    }
  }
  return sched;
}

Schedule ring_allgather(std::uint32_t num_nodes, std::size_t elements) {
  require(num_nodes >= 2, "ring_allgather: need at least 2 nodes");
  require(elements >= num_nodes,
          "ring_allgather: need at least one element per chunk");
  Schedule sched("ring_allgather", num_nodes, elements);
  const std::uint32_t n = num_nodes;
  // At step t node i forwards chunk (i - t) mod n clockwise, starting with
  // its own chunk; after n-1 steps everyone has every chunk.
  for (std::uint32_t t = 0; t + 1 < n; ++t) {
    Step& step = sched.add_step("all-gather " + std::to_string(t));
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t chunk = (i + n - t % n) % n;
      const ChunkRange r = chunk_range(elements, n, chunk);
      if (r.count == 0) continue;
      step.transfers.push_back(Transfer{i, (i + 1) % n, r.offset, r.count,
                                        TransferKind::kCopy,
                                        topo::Direction::kClockwise});
    }
  }
  return sched;
}

}  // namespace wrht::coll
