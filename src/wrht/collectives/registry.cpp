#include "wrht/collectives/registry.hpp"

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/halving_doubling.hpp"
#include "wrht/collectives/hring_allreduce.hpp"
#include "wrht/collectives/recursive_doubling.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/error.hpp"

namespace wrht::coll {

Registry::Registry() {
  builders_["ring"] = [](const AllreduceParams& p) {
    return ring_allreduce(p.num_nodes, p.elements);
  };
  builders_["hring"] = [](const AllreduceParams& p) {
    require(p.group_size >= 2, "hring builder: group_size required");
    return hring_allreduce(p.num_nodes, p.elements, p.group_size);
  };
  builders_["btree"] = [](const AllreduceParams& p) {
    return btree_allreduce(p.num_nodes, p.elements);
  };
  builders_["recursive_doubling"] = [](const AllreduceParams& p) {
    return recursive_doubling_allreduce(p.num_nodes, p.elements);
  };
  builders_["halving_doubling"] = [](const AllreduceParams& p) {
    return halving_doubling_allreduce(p.num_nodes, p.elements);
  };
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::register_algorithm(const std::string& name, BuilderFn builder) {
  require(static_cast<bool>(builder), "Registry: null builder");
  const std::lock_guard<std::mutex> lock(mutex_);
  builders_[name] = std::move(builder);
}

bool Registry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return builders_.count(name) != 0;
}

std::vector<std::string> Registry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(builders_.size());
  for (const auto& [name, fn] : builders_) out.push_back(name);
  return out;
}

Schedule Registry::build(const std::string& name,
                         const AllreduceParams& params) const {
  require(params.num_nodes > 0, "Registry::build: num_nodes must be > 0");
  require(params.elements > 0, "Registry::build: elements must be > 0");
  // Copy the builder out so schedule construction runs unlocked:
  // builders may be slow (WRHT planning) and may re-enter the registry.
  BuilderFn builder;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = builders_.find(name);
    if (it == builders_.end()) {
      std::string known;
      for (const auto& [registered, fn] : builders_) {
        if (!known.empty()) known += ", ";
        known += registered;
      }
      throw InvalidArgument("Registry: unknown algorithm '" + name +
                            "' (registered: " + known + ")");
    }
    builder = it->second;
  }
  return builder(params);
}

}  // namespace wrht::coll
