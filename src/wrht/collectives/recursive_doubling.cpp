#include "wrht/collectives/recursive_doubling.hpp"

#include <bit>
#include <vector>

#include "wrht/common/error.hpp"

namespace wrht::coll {

namespace {

/// Largest power of two <= n.
std::uint32_t floor_pow2(std::uint32_t n) { return std::bit_floor(n); }

}  // namespace

Schedule recursive_doubling_allreduce(std::uint32_t num_nodes,
                                      std::size_t elements) {
  require(num_nodes >= 2, "recursive_doubling: need at least 2 nodes");
  Schedule sched("recursive_doubling", num_nodes, elements);

  const std::uint32_t p2 = floor_pow2(num_nodes);
  const std::uint32_t r = num_nodes - p2;

  // Pre-fold: odd nodes below 2r merge into their even neighbour so exactly
  // p2 participants remain: the even nodes below 2r plus all nodes >= 2r.
  if (r > 0) {
    Step& step = sched.add_step("pre-fold");
    for (std::uint32_t i = 1; i < 2 * r; i += 2) {
      step.transfers.push_back(Transfer{i, i - 1, 0, elements,
                                        TransferKind::kReduce, std::nullopt});
    }
  }

  // Participant rank -> node id.
  std::vector<NodeId> node_of(p2);
  for (std::uint32_t rank = 0; rank < p2; ++rank) {
    node_of[rank] = rank < r ? 2 * rank : rank + r;
  }

  const std::uint32_t levels = std::bit_width(p2) - 1;
  for (std::uint32_t s = 0; s < levels; ++s) {
    Step& step = sched.add_step("exchange 2^" + std::to_string(s));
    for (std::uint32_t rank = 0; rank < p2; ++rank) {
      const std::uint32_t partner = rank ^ (1u << s);
      // Emit each directed transfer once; both directions happen in-step.
      step.transfers.push_back(Transfer{node_of[rank], node_of[partner], 0,
                                        elements, TransferKind::kReduce,
                                        std::nullopt});
    }
  }

  if (r > 0) {
    Step& step = sched.add_step("post-copy");
    for (std::uint32_t i = 1; i < 2 * r; i += 2) {
      step.transfers.push_back(
          Transfer{i - 1, i, 0, elements, TransferKind::kCopy, std::nullopt});
    }
  }
  return sched;
}

std::uint64_t recursive_doubling_steps(std::uint32_t num_nodes) {
  require(num_nodes >= 2, "recursive_doubling_steps: need >= 2 nodes");
  const std::uint32_t p2 = floor_pow2(num_nodes);
  const std::uint64_t levels = std::bit_width(p2) - 1;
  return num_nodes == p2 ? levels : levels + 2;
}

}  // namespace wrht::coll
