#include "wrht/collectives/executor.hpp"

#include <cmath>
#include <unordered_map>

#include "wrht/common/error.hpp"

namespace wrht::coll {

void Executor::run(const Schedule& schedule,
                   std::vector<std::vector<double>>& buffers) {
  run(schedule, buffers, obs::Probe{});
}

void Executor::run(const Schedule& schedule,
                   std::vector<std::vector<double>>& buffers,
                   const obs::Probe& probe) {
  schedule.validate();
  require(buffers.size() == schedule.num_nodes(),
          "Executor: buffer count != node count");
  for (const auto& b : buffers) {
    require(b.size() == schedule.elements(),
            "Executor: buffer length != schedule elements");
  }

  std::size_t step_index = 0;
  for (const auto& step : schedule.steps()) {
    // Snapshot each sender's buffer once per step so concurrent transfers
    // all observe beginning-of-step state.
    std::unordered_map<NodeId, std::vector<double>> snapshots;
    for (const auto& t : step.transfers) {
      snapshots.try_emplace(t.src, buffers[t.src]);
    }
    std::uint64_t elements_moved = 0;
    for (const auto& t : step.transfers) {
      const auto& src = snapshots.at(t.src);
      auto& dst = buffers[t.dst];
      if (t.kind == TransferKind::kReduce) {
        for (std::size_t e = t.offset; e < t.offset + t.count; ++e) {
          dst[e] += src[e];
        }
      } else {
        for (std::size_t e = t.offset; e < t.offset + t.count; ++e) {
          dst[e] = src[e];
        }
      }
      elements_moved += t.count;
    }

    probe.count("executor.steps");
    probe.count("executor.transfers", step.transfers.size());
    probe.count("executor.elements_moved", elements_moved);
    if (probe.trace != nullptr) {
      obs::TraceSpan span;
      span.name = step.label.empty() ? "step " + std::to_string(step_index)
                                     : step.label;
      span.category = "executor-step";
      span.start = Seconds(static_cast<double>(step_index) * 1e-6);
      span.duration = Seconds(1e-6);
      span.args = {{"transfers", std::to_string(step.transfers.size())},
                   {"elements_moved", std::to_string(elements_moved)}};
      probe.span(span);
    }
    ++step_index;
  }
}

namespace {

/// Fills deterministic inputs and the element-wise global sum.
std::vector<std::vector<double>> make_inputs(const Schedule& schedule,
                                             Rng& rng,
                                             std::vector<double>& sum) {
  const std::uint32_t n = schedule.num_nodes();
  const std::size_t elements = schedule.elements();
  std::vector<std::vector<double>> buffers(n);
  sum.assign(elements, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    buffers[i] = rng.uniform_vector(elements, -1.0, 1.0);
    for (std::size_t e = 0; e < elements; ++e) sum[e] += buffers[i][e];
  }
  return buffers;
}

void check(double max_err, double tolerance, const Schedule& schedule,
           const char* what) {
  if (max_err > tolerance) {
    throw Error(std::string("Executor: schedule '") + schedule.algorithm() +
                "' is not a " + what + " (max error " +
                std::to_string(max_err) + ")");
  }
}

}  // namespace

double Executor::verify_reduce(const Schedule& schedule, NodeId root,
                               Rng& rng, double tolerance) {
  require(root < schedule.num_nodes(), "verify_reduce: root out of range");
  std::vector<double> expected;
  auto buffers = make_inputs(schedule, rng, expected);
  run(schedule, buffers);
  double max_err = 0.0;
  for (std::size_t e = 0; e < expected.size(); ++e) {
    max_err = std::max(max_err, std::abs(buffers[root][e] - expected[e]));
  }
  check(max_err, tolerance, schedule, "Reduce");
  return max_err;
}

double Executor::verify_broadcast(const Schedule& schedule, NodeId root,
                                  Rng& rng, double tolerance) {
  require(root < schedule.num_nodes(), "verify_broadcast: root out of range");
  std::vector<double> unused;
  auto buffers = make_inputs(schedule, rng, unused);
  const std::vector<double> expected = buffers[root];
  run(schedule, buffers);
  double max_err = 0.0;
  for (const auto& buf : buffers) {
    for (std::size_t e = 0; e < expected.size(); ++e) {
      max_err = std::max(max_err, std::abs(buf[e] - expected[e]));
    }
  }
  check(max_err, tolerance, schedule, "Broadcast");
  return max_err;
}

double Executor::verify_reduce_scatter(const Schedule& schedule,
                                       std::size_t chunks, Rng& rng,
                                       double tolerance) {
  std::vector<double> expected;
  auto buffers = make_inputs(schedule, rng, expected);
  run(schedule, buffers);
  double max_err = 0.0;
  for (std::size_t i = 0; i < chunks && i < schedule.num_nodes(); ++i) {
    const ChunkRange r = chunk_range(schedule.elements(), chunks, i);
    for (std::size_t e = r.offset; e < r.offset + r.count; ++e) {
      max_err = std::max(max_err, std::abs(buffers[i][e] - expected[e]));
    }
  }
  check(max_err, tolerance, schedule, "Reduce-scatter");
  return max_err;
}

double Executor::verify_allgather(const Schedule& schedule,
                                  std::size_t chunks, Rng& rng,
                                  double tolerance) {
  std::vector<double> unused;
  auto buffers = make_inputs(schedule, rng, unused);
  // The reference vector is stitched from each owner's chunk.
  std::vector<double> expected(schedule.elements(), 0.0);
  for (std::size_t i = 0; i < chunks && i < schedule.num_nodes(); ++i) {
    const ChunkRange r = chunk_range(schedule.elements(), chunks, i);
    for (std::size_t e = r.offset; e < r.offset + r.count; ++e) {
      expected[e] = buffers[i][e];
    }
  }
  run(schedule, buffers);
  double max_err = 0.0;
  for (const auto& buf : buffers) {
    for (std::size_t e = 0; e < expected.size(); ++e) {
      max_err = std::max(max_err, std::abs(buf[e] - expected[e]));
    }
  }
  check(max_err, tolerance, schedule, "All-gather");
  return max_err;
}

double Executor::verify_allreduce(const Schedule& schedule, Rng& rng,
                                  double tolerance) {
  const std::uint32_t n = schedule.num_nodes();
  const std::size_t elements = schedule.elements();

  std::vector<std::vector<double>> buffers(n);
  std::vector<double> expected(elements, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    buffers[i] = rng.uniform_vector(elements, -1.0, 1.0);
    for (std::size_t e = 0; e < elements; ++e) expected[e] += buffers[i][e];
  }

  run(schedule, buffers);

  double max_err = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::size_t e = 0; e < elements; ++e) {
      max_err = std::max(max_err, std::abs(buffers[i][e] - expected[e]));
    }
  }
  if (max_err > tolerance) {
    throw Error("Executor: schedule '" + schedule.algorithm() +
                "' is not an All-reduce (max error " +
                std::to_string(max_err) + ")");
  }
  return max_err;
}

}  // namespace wrht::coll
