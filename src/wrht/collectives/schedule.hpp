// Communication-schedule intermediate representation.
//
// Every All-reduce algorithm in this library (Ring, H-Ring, Binary Tree,
// Recursive Doubling, WRHT) is expressed as a Schedule: an ordered list of
// Steps, each containing the Transfers that happen concurrently in that
// step. The same IR is executed by three engines:
//   * coll::Executor      - moves real data, verifies All-reduce semantics,
//   * optics::RingNetwork - assigns wavelengths and computes optical time,
//   * elec::FatTreeNetwork- routes flows and computes electrical time.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wrht/common/units.hpp"
#include "wrht/topo/ring.hpp"

namespace wrht::coll {

using NodeId = topo::NodeId;

/// What the receiver does with the payload.
enum class TransferKind {
  kReduce,  ///< receiver accumulates (element-wise sum) into its buffer
  kCopy,    ///< receiver overwrites its buffer range
};

/// One point-to-point message within a step. `offset`/`count` select the
/// element range [offset, offset+count) of the logical All-reduce vector.
struct Transfer {
  NodeId src = 0;
  NodeId dst = 0;
  std::size_t offset = 0;
  std::size_t count = 0;
  TransferKind kind = TransferKind::kReduce;
  /// Optical routing hint. WRHT pins each transfer to the ring direction
  /// that stays inside its group's arc so neighbouring groups can reuse
  /// wavelengths; when absent the RWA engine picks the shortest direction.
  std::optional<topo::Direction> direction;
};

/// Transfers that are in flight concurrently. Senders are read with
/// beginning-of-step (snapshot) semantics.
struct Step {
  std::vector<Transfer> transfers;
  std::string label;
};

class Schedule {
 public:
  Schedule(std::string algorithm, std::uint32_t num_nodes,
           std::size_t elements);

  [[nodiscard]] const std::string& algorithm() const { return algorithm_; }
  [[nodiscard]] std::uint32_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t elements() const { return elements_; }

  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  [[nodiscard]] std::size_t num_steps() const { return steps_.size(); }

  Step& add_step(std::string label = {});

  /// Sum of element counts over all transfers (total traffic in elements).
  [[nodiscard]] std::uint64_t total_traffic_elements() const;

  /// Largest single-transfer element count of a step (the optical per-step
  /// serialization is governed by the largest concurrent transfer).
  [[nodiscard]] std::size_t max_transfer_elements(std::size_t step) const;

  /// Structural validation: node ids in range, element ranges within the
  /// vector, no node both sending and receiving conflicting ranges is NOT
  /// checked here (snapshot semantics make it legal); throws on violation.
  void validate() const;

 private:
  std::string algorithm_;
  std::uint32_t num_nodes_;
  std::size_t elements_;
  std::vector<Step> steps_;
};

/// One circuit a step asks the optical control plane to keep lit: the
/// (src, dst, direction-hint) triple that determines which micro-rings are
/// tuned. Two steps whose circuit sets coincide need no retuning between
/// them (Ring All-reduce's 2(N-1) steps are the canonical example); WRHT
/// changes circuits on almost every step by construction.
struct Circuit {
  NodeId src = 0;
  NodeId dst = 0;
  /// Packed direction hint: 0 = none, 1 = clockwise, 2 = counter-clockwise.
  std::uint8_t direction = 0;
  auto operator<=>(const Circuit&) const = default;
};
[[nodiscard]] Circuit circuit_of(const Transfer& transfer);

/// Which circuits change entering a step relative to the previous step —
/// the per-step reconfiguration metadata the ReconfigPolicy engines and the
/// wrht::plan cost models reason about. Deltas are derived from the
/// schedule, not stored in it, so the IR stays a pure data-movement
/// description.
struct ReconfigDelta {
  /// Circuits lit entering this step that the previous step did not use
  /// (every circuit of step 0 — cold start).
  std::vector<Circuit> added;
  /// Circuits the previous step used that this step tears down.
  std::vector<Circuit> removed;
  /// Circuits carried over unchanged from the previous step.
  std::size_t kept = 0;
  /// No retuning needed entering this step (nothing added or removed).
  [[nodiscard]] bool reconfig_free() const {
    return added.empty() && removed.empty();
  }
};

/// One delta per step. Deltas deduplicate repeated (src, dst, direction)
/// transfers within a step: a circuit lit once serves them all.
[[nodiscard]] std::vector<ReconfigDelta> reconfig_deltas(
    const Schedule& schedule);

/// True when every step after the first reuses the previous step's exact
/// circuit set, i.e. the whole schedule retunes at most once (step 0).
[[nodiscard]] bool is_reconfig_free(const Schedule& schedule);

/// Element range [offset, count) of chunk `index` out of `chunks` for a
/// vector of `elements`; remainders spread over the leading chunks, so every
/// chunk differs from any other by at most one element.
struct ChunkRange {
  std::size_t offset;
  std::size_t count;
};
[[nodiscard]] ChunkRange chunk_range(std::size_t elements, std::size_t chunks,
                                     std::size_t index);

}  // namespace wrht::coll
