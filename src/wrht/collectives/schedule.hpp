// Communication-schedule intermediate representation.
//
// Every All-reduce algorithm in this library (Ring, H-Ring, Binary Tree,
// Recursive Doubling, WRHT) is expressed as a Schedule: an ordered list of
// Steps, each containing the Transfers that happen concurrently in that
// step. The same IR is executed by three engines:
//   * coll::Executor      - moves real data, verifies All-reduce semantics,
//   * optics::RingNetwork - assigns wavelengths and computes optical time,
//   * elec::FatTreeNetwork- routes flows and computes electrical time.
//
// Storage: per-step Transfer vectors live on a per-schedule common::Arena
// by default (ScheduleStorage::kArena), so building an N=10^5-step schedule
// costs a handful of system allocations and the transfers of consecutive
// steps sit contiguously in memory for the RWA/DES loops that stream over
// them. ScheduleStorage::kHeap (via ScheduleStorageScope) restores plain
// operator-new storage; it exists as the reference path for differential
// tests. Both modes produce value-identical schedules.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wrht/common/arena.hpp"
#include "wrht/common/units.hpp"
#include "wrht/topo/ring.hpp"

namespace wrht::coll {

using NodeId = topo::NodeId;

/// What the receiver does with the payload.
enum class TransferKind {
  kReduce,  ///< receiver accumulates (element-wise sum) into its buffer
  kCopy,    ///< receiver overwrites its buffer range
};

/// One point-to-point message within a step. `offset`/`count` select the
/// element range [offset, offset+count) of the logical All-reduce vector.
struct Transfer {
  NodeId src = 0;
  NodeId dst = 0;
  std::size_t offset = 0;
  std::size_t count = 0;
  TransferKind kind = TransferKind::kReduce;
  /// Optical routing hint. WRHT pins each transfer to the ring direction
  /// that stays inside its group's arc so neighbouring groups can reuse
  /// wavelengths; when absent the RWA engine picks the shortest direction.
  std::optional<topo::Direction> direction;
};

/// Per-step transfer storage. Default-constructed (null-arena) lists behave
/// exactly like std::vector<Transfer>; lists handed out by Schedule point at
/// the schedule's arena. The allocator does not propagate on copy/move
/// assignment or swap, so `a.transfers = b.transfers` always copies elements
/// into the destination's own storage and never re-homes a list onto a
/// foreign arena.
using TransferList =
    std::vector<Transfer, common::ArenaAllocator<Transfer>>;

/// Transfers that are in flight concurrently. Senders are read with
/// beginning-of-step (snapshot) semantics.
struct Step {
  TransferList transfers;
  std::string label;
};

/// Where a Schedule keeps its Transfer storage. Selected per-thread at
/// Schedule construction time; see ScheduleStorageScope.
enum class ScheduleStorage {
  kArena,  ///< per-schedule monotonic arena (default)
  kHeap,   ///< operator new per vector — the pre-arena reference path
};

/// Storage mode new Schedules on this thread are built with.
[[nodiscard]] ScheduleStorage default_schedule_storage();

/// RAII override of the thread-local storage mode. Lets tests and the
/// differential harness force the heap reference path (or pin the arena
/// path) for everything a call tree builds — including Registry::build and
/// the algorithm builders — without threading a parameter through them.
class ScheduleStorageScope {
 public:
  explicit ScheduleStorageScope(ScheduleStorage storage);
  ~ScheduleStorageScope();
  ScheduleStorageScope(const ScheduleStorageScope&) = delete;
  ScheduleStorageScope& operator=(const ScheduleStorageScope&) = delete;

 private:
  ScheduleStorage saved_;
};

class Schedule {
 public:
  Schedule(std::string algorithm, std::uint32_t num_nodes,
           std::size_t elements);

  /// Copies rebuild the step/transfer data on the copy's own fresh storage
  /// (per the current thread-local mode); the source arena is untouched.
  Schedule(const Schedule& other);
  Schedule& operator=(const Schedule& other);
  Schedule(Schedule&&) noexcept = default;
  Schedule& operator=(Schedule&&) noexcept = default;

  [[nodiscard]] const std::string& algorithm() const { return algorithm_; }
  [[nodiscard]] std::uint32_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t elements() const { return elements_; }

  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  [[nodiscard]] std::size_t num_steps() const { return steps_.size(); }

  /// Appends a step whose transfer list is bound to this schedule's
  /// storage. Builders that know their step count should reserve_steps()
  /// first and `transfers.reserve()` per step: growth inside a monotonic
  /// arena abandons the outgrown block until the schedule dies.
  Step& add_step(std::string label = {});

  void reserve_steps(std::size_t n) { steps_.reserve(n); }

  /// Storage this schedule was built with.
  [[nodiscard]] ScheduleStorage storage() const {
    return arena_ ? ScheduleStorage::kArena : ScheduleStorage::kHeap;
  }
  /// The backing arena (null in kHeap mode) — for memory accounting.
  [[nodiscard]] const common::Arena* arena() const { return arena_.get(); }

  /// True when every transfer spans the whole vector ([0, elements)) —
  /// the precondition for rescale_elements(). Holds for WRHT/tree-style
  /// full-vector schedules; false for chunked ring/halving-doubling ones.
  [[nodiscard]] bool full_vector() const;

  /// Re-targets a full-vector schedule at a new vector length in place:
  /// every transfer's count becomes `new_elements`. The step/circuit
  /// structure of such schedules depends only on (N, m, w), so this is the
  /// patch operation the incremental sweep cache uses to reuse one build
  /// across an elements axis. Throws without modifying anything if the
  /// schedule is not full-vector.
  void rescale_elements(std::size_t new_elements);

  /// Sum of element counts over all transfers (total traffic in elements).
  [[nodiscard]] std::uint64_t total_traffic_elements() const;

  /// Largest single-transfer element count of a step (the optical per-step
  /// serialization is governed by the largest concurrent transfer).
  [[nodiscard]] std::size_t max_transfer_elements(std::size_t step) const;

  /// Structural validation: node ids in range, element ranges within the
  /// vector, no node both sending and receiving conflicting ranges is NOT
  /// checked here (snapshot semantics make it legal); throws on violation.
  void validate() const;

 private:
  [[nodiscard]] common::ArenaAllocator<Transfer> transfer_allocator() const {
    return common::ArenaAllocator<Transfer>(arena_.get());
  }

  std::string algorithm_;
  std::uint32_t num_nodes_;
  std::size_t elements_;
  // arena_ is declared before steps_ so steps_ (whose transfer lists live
  // inside the arena) is destroyed first.
  std::shared_ptr<common::Arena> arena_;
  std::vector<Step> steps_;
};

/// One circuit a step asks the optical control plane to keep lit: the
/// (src, dst, direction-hint) triple that determines which micro-rings are
/// tuned. Two steps whose circuit sets coincide need no retuning between
/// them (Ring All-reduce's 2(N-1) steps are the canonical example); WRHT
/// changes circuits on almost every step by construction.
struct Circuit {
  NodeId src = 0;
  NodeId dst = 0;
  /// Packed direction hint: 0 = none, 1 = clockwise, 2 = counter-clockwise.
  std::uint8_t direction = 0;
  auto operator<=>(const Circuit&) const = default;
};
[[nodiscard]] Circuit circuit_of(const Transfer& transfer);

/// Circuit storage mirroring TransferList: null-arena by default, bindable
/// to an arena by callers that batch-derive deltas for huge schedules.
using CircuitList = std::vector<Circuit, common::ArenaAllocator<Circuit>>;

/// Which circuits change entering a step relative to the previous step —
/// the per-step reconfiguration metadata the ReconfigPolicy engines and the
/// wrht::plan cost models reason about. Deltas are derived from the
/// schedule, not stored in it, so the IR stays a pure data-movement
/// description.
struct ReconfigDelta {
  /// Circuits lit entering this step that the previous step did not use
  /// (every circuit of step 0 — cold start).
  CircuitList added;
  /// Circuits the previous step used that this step tears down.
  CircuitList removed;
  /// Circuits carried over unchanged from the previous step.
  std::size_t kept = 0;
  /// No retuning needed entering this step (nothing added or removed).
  [[nodiscard]] bool reconfig_free() const {
    return added.empty() && removed.empty();
  }
};

/// One delta per step. Deltas deduplicate repeated (src, dst, direction)
/// transfers within a step: a circuit lit once serves them all.
[[nodiscard]] std::vector<ReconfigDelta> reconfig_deltas(
    const Schedule& schedule);

/// True when every step after the first reuses the previous step's exact
/// circuit set, i.e. the whole schedule retunes at most once (step 0).
/// Streams over steps without materializing the delta list, so it stays
/// cheap on 10^5-step schedules.
[[nodiscard]] bool is_reconfig_free(const Schedule& schedule);

/// Element range [offset, count) of chunk `index` out of `chunks` for a
/// vector of `elements`; remainders spread over the leading chunks, so every
/// chunk differs from any other by at most one element.
struct ChunkRange {
  std::size_t offset;
  std::size_t count;
};
[[nodiscard]] ChunkRange chunk_range(std::size_t elements, std::size_t chunks,
                                     std::size_t index);

}  // namespace wrht::coll
