// Classic Ring All-reduce: a reduce-scatter pass followed by an all-gather
// pass, 2(N-1) steps total, d/N payload per step (Baidu/Horovod style).
// On the optical ring every step uses a single wavelength: all N concurrent
// neighbour transfers occupy disjoint fiber segments.
#pragma once

#include <cstddef>
#include <cstdint>

#include "wrht/collectives/schedule.hpp"

namespace wrht::coll {

/// Builds the Ring All-reduce schedule for `num_nodes` nodes reducing a
/// vector of `elements` elements. Requires num_nodes >= 2 and
/// elements >= num_nodes (each node owns at least one chunk element).
[[nodiscard]] Schedule ring_allreduce(std::uint32_t num_nodes,
                                      std::size_t elements);

/// Closed-form step count: 2(N-1).
[[nodiscard]] std::uint64_t ring_allreduce_steps(std::uint32_t num_nodes);

}  // namespace wrht::coll
