#include "wrht/collectives/schedule_stats.hpp"

#include <algorithm>

#include "wrht/common/error.hpp"

namespace wrht::coll {

namespace {

double imbalance(const std::vector<std::uint64_t>& load) {
  std::uint64_t max_load = 0;
  std::uint64_t total = 0;
  for (const auto l : load) {
    max_load = std::max(max_load, l);
    total += l;
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / load.size();
  return static_cast<double>(max_load) / mean;
}

}  // namespace

double ScheduleStats::tx_imbalance() const { return imbalance(per_node_tx); }
double ScheduleStats::rx_imbalance() const { return imbalance(per_node_rx); }

ScheduleStats analyze(const Schedule& schedule) {
  schedule.validate();
  ScheduleStats stats;
  stats.steps = schedule.num_steps();
  stats.per_node_tx.assign(schedule.num_nodes(), 0);
  stats.per_node_rx.assign(schedule.num_nodes(), 0);

  for (const auto& step : schedule.steps()) {
    stats.max_step_transfers =
        std::max(stats.max_step_transfers, step.transfers.size());
    for (const auto& t : step.transfers) {
      ++stats.transfers;
      stats.total_traffic_elements += t.count;
      stats.per_node_tx[t.src] += t.count;
      stats.per_node_rx[t.dst] += t.count;
      stats.max_transfer_elements =
          std::max(stats.max_transfer_elements, t.count);
    }
  }
  for (const auto tx : stats.per_node_tx) {
    stats.max_node_tx = std::max(stats.max_node_tx, tx);
  }
  for (const auto rx : stats.per_node_rx) {
    stats.max_node_rx = std::max(stats.max_node_rx, rx);
  }
  return stats;
}

}  // namespace wrht::coll
