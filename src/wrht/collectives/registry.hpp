// Runtime registry of All-reduce schedule builders.
//
// The four baselines register themselves on first use; the WRHT core module
// adds itself via wrht::core::register_wrht_algorithm() (it lives in a
// higher-level library and cannot be a build-time dependency here). Benches
// and examples look algorithms up by name so sweeps are table-driven.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "wrht/collectives/schedule.hpp"

namespace wrht::coll {

/// Parameter bundle understood by every builder; builders ignore the fields
/// they do not need.
struct AllreduceParams {
  std::uint32_t num_nodes = 0;
  std::size_t elements = 0;
  /// Group size m (H-Ring, WRHT).
  std::uint32_t group_size = 0;
  /// Available wavelengths w (WRHT planning).
  std::uint32_t wavelengths = 64;
};

using BuilderFn = std::function<Schedule(const AllreduceParams&)>;

/// Thread-safe: lookups and registrations lock internally, so concurrent
/// sweep workers can build schedules while a late module registers.
class Registry {
 public:
  /// Global registry with the built-in baselines pre-registered:
  /// "ring", "hring", "btree", "recursive_doubling", "halving_doubling".
  static Registry& instance();

  /// Registers or replaces a builder under `name`.
  void register_algorithm(const std::string& name, BuilderFn builder);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Builds the schedule. Throws InvalidArgument when `params.num_nodes`
  /// or `params.elements` is zero, and for unknown names (the message
  /// lists every registered algorithm).
  [[nodiscard]] Schedule build(const std::string& name,
                               const AllreduceParams& params) const;

 private:
  Registry();
  mutable std::mutex mutex_;
  std::map<std::string, BuilderFn> builders_;
};

}  // namespace wrht::coll
