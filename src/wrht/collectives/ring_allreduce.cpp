#include "wrht/collectives/ring_allreduce.hpp"

#include "wrht/common/error.hpp"

namespace wrht::coll {

Schedule ring_allreduce(std::uint32_t num_nodes, std::size_t elements) {
  require(num_nodes >= 2, "ring_allreduce: need at least 2 nodes");
  require(elements >= num_nodes,
          "ring_allreduce: need at least one element per chunk");
  Schedule sched("ring", num_nodes, elements);
  const std::uint32_t n = num_nodes;

  // Reduce-scatter: at step t node i forwards chunk (i - t) mod n to its
  // clockwise neighbour, which accumulates it. After n-1 steps node i fully
  // owns chunk (i + 1) mod n.
  for (std::uint32_t t = 0; t + 1 < n; ++t) {
    Step& step = sched.add_step("reduce-scatter " + std::to_string(t));
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t chunk = (i + n - t % n) % n;
      const ChunkRange r = chunk_range(elements, n, chunk);
      if (r.count == 0) continue;
      step.transfers.push_back(Transfer{
          i, (i + 1) % n, r.offset, r.count, TransferKind::kReduce,
          topo::Direction::kClockwise});
    }
  }

  // All-gather: at step t node i forwards its completed chunk
  // (i + 1 - t) mod n to its clockwise neighbour, which overwrites.
  for (std::uint32_t t = 0; t + 1 < n; ++t) {
    Step& step = sched.add_step("all-gather " + std::to_string(t));
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t chunk = (i + 1 + n - t % n) % n;
      const ChunkRange r = chunk_range(elements, n, chunk);
      if (r.count == 0) continue;
      step.transfers.push_back(Transfer{
          i, (i + 1) % n, r.offset, r.count, TransferKind::kCopy,
          topo::Direction::kClockwise});
    }
  }
  return sched;
}

std::uint64_t ring_allreduce_steps(std::uint32_t num_nodes) {
  require(num_nodes >= 1, "ring_allreduce_steps: empty system");
  return 2ull * (num_nodes - 1);
}

}  // namespace wrht::coll
