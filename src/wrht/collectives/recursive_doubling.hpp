// Recursive-doubling All-reduce (the "RD" electrical baseline): in step s,
// node i exchanges its full partial vector with node i XOR 2^s and both
// reduce; after ceil(log2 N) steps every node holds the global sum.
//
// Non-power-of-two N is handled with the standard fold: the first 2r nodes
// (r = N - 2^floor(log2 N)) pre-combine pairwise so a power-of-two core
// runs the doubling, then the folded-away nodes receive the result.
#pragma once

#include <cstddef>
#include <cstdint>

#include "wrht/collectives/schedule.hpp"

namespace wrht::coll {

[[nodiscard]] Schedule recursive_doubling_allreduce(std::uint32_t num_nodes,
                                                    std::size_t elements);

/// Closed-form step count: log2(N) for powers of two, else
/// floor(log2 N) + 2 (pre-fold + doubling + post-copy).
[[nodiscard]] std::uint64_t recursive_doubling_steps(std::uint32_t num_nodes);

}  // namespace wrht::coll
