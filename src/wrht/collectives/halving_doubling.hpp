// Recursive halving-doubling All-reduce (Rabenseifner's algorithm): a
// recursive-halving reduce-scatter followed by a recursive-doubling
// all-gather. Bandwidth-optimal total traffic (~2d per node) in 2*log2(N)
// steps — the payload-efficient alternative to full-vector recursive
// doubling; included as an extension beyond the paper's baseline set.
//
// Non-power-of-two N uses the standard pre-fold: the first 2r nodes
// (r = N - 2^floor(log2 N)) combine pairwise before the power-of-two core
// runs, and receive the result afterwards.
#pragma once

#include <cstddef>
#include <cstdint>

#include "wrht/collectives/schedule.hpp"

namespace wrht::coll {

[[nodiscard]] Schedule halving_doubling_allreduce(std::uint32_t num_nodes,
                                                  std::size_t elements);

/// 2*log2(N) for powers of two, else 2*floor(log2 N) + 2.
[[nodiscard]] std::uint64_t halving_doubling_steps(std::uint32_t num_nodes);

}  // namespace wrht::coll
