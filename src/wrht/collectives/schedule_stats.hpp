// Schedule analytics: traffic totals, per-node load balance and step
// concurrency, for comparing algorithms beyond wall-clock time (the
// schedule_inspector example prints these side by side).
#pragma once

#include <cstdint>
#include <vector>

#include "wrht/collectives/schedule.hpp"

namespace wrht::coll {

struct ScheduleStats {
  std::size_t steps = 0;
  std::size_t transfers = 0;
  std::uint64_t total_traffic_elements = 0;

  std::vector<std::uint64_t> per_node_tx;  ///< elements sent per node
  std::vector<std::uint64_t> per_node_rx;  ///< elements received per node
  std::uint64_t max_node_tx = 0;
  std::uint64_t max_node_rx = 0;

  /// Largest number of concurrent transfers in one step.
  std::size_t max_step_transfers = 0;
  /// Largest element payload moved by a single transfer.
  std::size_t max_transfer_elements = 0;

  /// max_node_tx / mean_node_tx: 1.0 means perfectly balanced senders.
  [[nodiscard]] double tx_imbalance() const;
  /// max_node_rx / mean_node_rx.
  [[nodiscard]] double rx_imbalance() const;
};

[[nodiscard]] ScheduleStats analyze(const Schedule& schedule);

}  // namespace wrht::coll
