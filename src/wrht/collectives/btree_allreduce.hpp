// Binary-tree All-reduce (the "BT" baseline of the paper, Fig. 2a):
// ceil(log2 N) reduce steps folding the full vector towards node 0, then
// ceil(log2 N) broadcast steps replaying the pattern in reverse. Every step
// moves the full d-element payload and uses one wavelength on the optical
// ring (the sender-receiver arcs of different subtrees are disjoint).
#pragma once

#include <cstddef>
#include <cstdint>

#include "wrht/collectives/schedule.hpp"

namespace wrht::coll {

/// Builds the binary-tree All-reduce schedule. Works for any N >= 2
/// (incomplete subtrees simply skip the missing partner).
[[nodiscard]] Schedule btree_allreduce(std::uint32_t num_nodes,
                                       std::size_t elements);

/// Closed-form step count: 2 * ceil(log2 N).
[[nodiscard]] std::uint64_t btree_allreduce_steps(std::uint32_t num_nodes);

/// ceil(log2 n) for n >= 1.
[[nodiscard]] std::uint32_t ceil_log2(std::uint64_t n);

}  // namespace wrht::coll
