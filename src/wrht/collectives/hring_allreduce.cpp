#include "wrht/collectives/hring_allreduce.hpp"

#include <cmath>
#include <vector>

#include "wrht/common/error.hpp"

namespace wrht::coll {

namespace {

struct Group {
  std::uint32_t start;  // first node id
  std::uint32_t size;
  [[nodiscard]] NodeId member(std::uint32_t j) const { return start + j; }
  [[nodiscard]] NodeId leader() const { return start + size / 2; }
};

std::vector<Group> make_groups(std::uint32_t n, std::uint32_t m) {
  std::vector<Group> groups;
  for (std::uint32_t start = 0; start < n; start += m) {
    groups.push_back(Group{start, std::min(m, n - start)});
  }
  return groups;
}

}  // namespace

Schedule hring_allreduce(std::uint32_t num_nodes, std::size_t elements,
                         std::uint32_t group_size) {
  require(num_nodes >= 2, "hring: need at least 2 nodes");
  require(group_size >= 2, "hring: group_size must be >= 2");
  require(elements >= num_nodes, "hring: need elements >= num_nodes");
  Schedule sched("hring", num_nodes, elements);

  const auto groups = make_groups(num_nodes, group_size);
  const std::uint32_t num_groups = static_cast<std::uint32_t>(groups.size());
  std::uint32_t max_size = 0;
  for (const auto& g : groups) max_size = std::max(max_size, g.size);

  // Stage A: ring all-reduce within every group concurrently. Group-local
  // neighbour transfers go clockwise; the wrap transfer (last member back to
  // the first) goes counterclockwise so it stays inside the group's arc.
  auto intra_dir = [&](const Group& g, std::uint32_t j) {
    return (j + 1 < g.size) ? topo::Direction::kClockwise
                            : topo::Direction::kCounterClockwise;
  };
  for (std::uint32_t t = 0; t + 1 < max_size; ++t) {
    Step& step = sched.add_step("intra reduce-scatter " + std::to_string(t));
    for (const auto& g : groups) {
      if (g.size < 2 || t + 1 >= g.size) continue;
      for (std::uint32_t j = 0; j < g.size; ++j) {
        const std::uint32_t chunk = (j + g.size - t % g.size) % g.size;
        const ChunkRange r = chunk_range(elements, g.size, chunk);
        if (r.count == 0) continue;
        step.transfers.push_back(Transfer{g.member(j),
                                          g.member((j + 1) % g.size), r.offset,
                                          r.count, TransferKind::kReduce,
                                          intra_dir(g, j)});
      }
    }
  }
  for (std::uint32_t t = 0; t + 1 < max_size; ++t) {
    Step& step = sched.add_step("intra all-gather " + std::to_string(t));
    for (const auto& g : groups) {
      if (g.size < 2 || t + 1 >= g.size) continue;
      for (std::uint32_t j = 0; j < g.size; ++j) {
        const std::uint32_t chunk = (j + 1 + g.size - t % g.size) % g.size;
        const ChunkRange r = chunk_range(elements, g.size, chunk);
        if (r.count == 0) continue;
        step.transfers.push_back(Transfer{g.member(j),
                                          g.member((j + 1) % g.size), r.offset,
                                          r.count, TransferKind::kCopy,
                                          intra_dir(g, j)});
      }
    }
  }

  if (num_groups > 1) {
    // Stage B: ring all-reduce across the leaders. All leader-to-leader
    // transfers travel clockwise; their arcs tile the ring without overlap.
    for (std::uint32_t t = 0; t + 1 < num_groups; ++t) {
      Step& step = sched.add_step("inter reduce-scatter " + std::to_string(t));
      for (std::uint32_t j = 0; j < num_groups; ++j) {
        const std::uint32_t chunk = (j + num_groups - t % num_groups) %
                                    num_groups;
        const ChunkRange r = chunk_range(elements, num_groups, chunk);
        if (r.count == 0) continue;
        step.transfers.push_back(Transfer{
            groups[j].leader(), groups[(j + 1) % num_groups].leader(),
            r.offset, r.count, TransferKind::kReduce,
            topo::Direction::kClockwise});
      }
    }
    for (std::uint32_t t = 0; t + 1 < num_groups; ++t) {
      Step& step = sched.add_step("inter all-gather " + std::to_string(t));
      for (std::uint32_t j = 0; j < num_groups; ++j) {
        const std::uint32_t chunk = (j + 1 + num_groups - t % num_groups) %
                                    num_groups;
        const ChunkRange r = chunk_range(elements, num_groups, chunk);
        if (r.count == 0) continue;
        step.transfers.push_back(Transfer{
            groups[j].leader(), groups[(j + 1) % num_groups].leader(),
            r.offset, r.count, TransferKind::kCopy,
            topo::Direction::kClockwise});
      }
    }

    // Stage C: every leader pushes the final vector to its members in one
    // optical step; members left of the leader are reached counterclockwise,
    // members right of it clockwise, so paths stay inside the group's arc.
    Step& step = sched.add_step("leader broadcast");
    for (const auto& g : groups) {
      const NodeId leader = g.leader();
      for (std::uint32_t j = 0; j < g.size; ++j) {
        const NodeId member = g.member(j);
        if (member == leader) continue;
        const auto dir = member < leader ? topo::Direction::kCounterClockwise
                                         : topo::Direction::kClockwise;
        step.transfers.push_back(Transfer{leader, member, 0, elements,
                                          TransferKind::kCopy, dir});
      }
    }
  }
  return sched;
}

std::uint64_t hring_steps(std::uint32_t num_nodes, std::uint32_t group_size,
                          std::uint32_t wavelengths) {
  require(num_nodes >= 2 && group_size >= 2 && wavelengths >= 1,
          "hring_steps: bad parameters");
  const double n = num_nodes;
  const double m = group_size;
  if (group_size <= wavelengths) {
    return static_cast<std::uint64_t>(std::ceil(2.0 * (m * m + n) / m)) - 3;
  }
  return static_cast<std::uint64_t>(std::ceil(2.0 * (2.0 * m * m + n) / m)) -
         6;
}

std::uint64_t hring_builder_steps(std::uint32_t num_nodes,
                                  std::uint32_t group_size) {
  const std::uint32_t max_size = std::min(group_size, num_nodes);
  const std::uint64_t num_groups = (num_nodes + group_size - 1) / group_size;
  std::uint64_t steps = 2ull * (max_size - 1);
  if (num_groups > 1) steps += 2ull * (num_groups - 1) + 1;
  return steps;
}

}  // namespace wrht::coll
