#include "wrht/collectives/btree_allreduce.hpp"

#include "wrht/common/error.hpp"

namespace wrht::coll {

std::uint32_t ceil_log2(std::uint64_t n) {
  require(n >= 1, "ceil_log2: n must be positive");
  std::uint32_t bits = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

Schedule btree_allreduce(std::uint32_t num_nodes, std::size_t elements) {
  require(num_nodes >= 2, "btree_allreduce: need at least 2 nodes");
  Schedule sched("btree", num_nodes, elements);
  const std::uint32_t levels = ceil_log2(num_nodes);

  // Reduce: at level s, node p + 2^(s-1) folds its partial into node p for
  // every p that is a multiple of 2^s.
  for (std::uint32_t s = 1; s <= levels; ++s) {
    Step& step = sched.add_step("reduce level " + std::to_string(s));
    const std::uint64_t stride = 1ull << s;
    const std::uint64_t half = 1ull << (s - 1);
    for (std::uint64_t p = 0; p < num_nodes; p += stride) {
      const std::uint64_t q = p + half;
      if (q >= num_nodes) continue;
      step.transfers.push_back(Transfer{
          static_cast<NodeId>(q), static_cast<NodeId>(p), 0, elements,
          TransferKind::kReduce, std::nullopt});
    }
  }

  // Broadcast: reverse of the reduce stage.
  for (std::uint32_t s = levels; s >= 1; --s) {
    Step& step = sched.add_step("broadcast level " + std::to_string(s));
    const std::uint64_t stride = 1ull << s;
    const std::uint64_t half = 1ull << (s - 1);
    for (std::uint64_t p = 0; p < num_nodes; p += stride) {
      const std::uint64_t q = p + half;
      if (q >= num_nodes) continue;
      step.transfers.push_back(Transfer{
          static_cast<NodeId>(p), static_cast<NodeId>(q), 0, elements,
          TransferKind::kCopy, std::nullopt});
    }
  }
  return sched;
}

std::uint64_t btree_allreduce_steps(std::uint32_t num_nodes) {
  return 2ull * ceil_log2(num_nodes);
}

}  // namespace wrht::coll
