// Hierarchical Ring All-reduce ("H-Ring", Ueno & Yokota style), the third
// optical baseline of the paper. Nodes are split into contiguous groups of
// (up to) m along the ring:
//   stage A: ring all-reduce inside every group in parallel,
//   stage B: ring all-reduce across the group leaders,
//   stage C: one optical broadcast step, leaders -> group members.
// Step count realised by this builder: 2(m-1) + 2(ceil(N/m)-1) + 1, which
// equals the paper's Table 1 formula 2(m^2+N)/m - 3 (the m <= w variant);
// e.g. N=1024, m=5 gives 417 steps.
#pragma once

#include <cstddef>
#include <cstdint>

#include "wrht/collectives/schedule.hpp"

namespace wrht::coll {

/// Builds the H-Ring schedule. `group_size` is the paper's m (>= 2).
/// Groups are contiguous runs along the ring; the last group may be smaller.
[[nodiscard]] Schedule hring_allreduce(std::uint32_t num_nodes,
                                       std::size_t elements,
                                       std::uint32_t group_size);

/// Paper's closed-form step count (Table 1), both wavelength branches:
///   m <= w: ceil(2(m^2+N)/m) - 3
///   m >  w: ceil(2(2m^2+N)/m) - 6
[[nodiscard]] std::uint64_t hring_steps(std::uint32_t num_nodes,
                                        std::uint32_t group_size,
                                        std::uint32_t wavelengths);

/// Step count of the schedule this builder actually emits:
/// 2(min(m,N)-1) + 2(ceil(N/m)-1) + (ceil(N/m) > 1 ? 1 : 0).
[[nodiscard]] std::uint64_t hring_builder_steps(std::uint32_t num_nodes,
                                                std::uint32_t group_size);

}  // namespace wrht::coll
