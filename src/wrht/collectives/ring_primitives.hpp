// Standalone ring collective primitives: reduce-scatter and all-gather,
// the two halves of Ring All-reduce exposed as independent schedules (the
// NCCL-style primitive set). Useful for composing custom collectives and
// for the gradient-bucketing training pipeline.
#pragma once

#include <cstddef>
#include <cstdint>

#include "wrht/collectives/schedule.hpp"

namespace wrht::coll {

/// N-1 steps; afterwards node i fully owns the global sum of chunk i
/// (chunks = num_nodes, balanced via chunk_range).
[[nodiscard]] Schedule ring_reduce_scatter(std::uint32_t num_nodes,
                                           std::size_t elements);

/// N-1 steps; assumes node i initially owns (only) chunk i and finishes
/// with every node holding all chunks.
[[nodiscard]] Schedule ring_allgather(std::uint32_t num_nodes,
                                      std::size_t elements);

}  // namespace wrht::coll
