#include "wrht/collectives/schedule.hpp"

#include <algorithm>
#include <iterator>

#include "wrht/common/error.hpp"

namespace wrht::coll {

namespace {

thread_local ScheduleStorage g_storage = ScheduleStorage::kArena;

}  // namespace

ScheduleStorage default_schedule_storage() { return g_storage; }

ScheduleStorageScope::ScheduleStorageScope(ScheduleStorage storage)
    : saved_(g_storage) {
  g_storage = storage;
}

ScheduleStorageScope::~ScheduleStorageScope() { g_storage = saved_; }

Schedule::Schedule(std::string algorithm, std::uint32_t num_nodes,
                   std::size_t elements)
    : algorithm_(std::move(algorithm)),
      num_nodes_(num_nodes),
      elements_(elements) {
  require(num_nodes >= 1, "Schedule: need at least one node");
  require(elements >= 1, "Schedule: need at least one element");
  if (g_storage == ScheduleStorage::kArena) {
    arena_ = std::make_shared<common::Arena>();
  }
}

Schedule::Schedule(const Schedule& other)
    : Schedule(other.algorithm_, other.num_nodes_, other.elements_) {
  steps_.reserve(other.steps_.size());
  for (const Step& src : other.steps_) {
    Step& dst = add_step(src.label);
    dst.transfers.assign(src.transfers.begin(), src.transfers.end());
  }
}

Schedule& Schedule::operator=(const Schedule& other) {
  if (this != &other) *this = Schedule(other);
  return *this;
}

Step& Schedule::add_step(std::string label) {
  steps_.push_back(Step{TransferList(transfer_allocator()),
                        std::move(label)});
  return steps_.back();
}

bool Schedule::full_vector() const {
  for (const Step& step : steps_) {
    for (const Transfer& t : step.transfers) {
      if (t.offset != 0 || t.count != elements_) return false;
    }
  }
  return true;
}

void Schedule::rescale_elements(std::size_t new_elements) {
  require(new_elements >= 1, "rescale_elements: need at least one element");
  require(full_vector(),
          "rescale_elements: schedule '" + algorithm_ +
              "' has chunked transfers; only full-vector schedules rescale");
  for (Step& step : steps_) {
    for (Transfer& t : step.transfers) t.count = new_elements;
  }
  elements_ = new_elements;
}

std::uint64_t Schedule::total_traffic_elements() const {
  std::uint64_t total = 0;
  for (const auto& step : steps_) {
    for (const auto& t : step.transfers) total += t.count;
  }
  return total;
}

std::size_t Schedule::max_transfer_elements(std::size_t step) const {
  require(step < steps_.size(), "Schedule: step index out of range");
  std::size_t max_count = 0;
  for (const auto& t : steps_[step].transfers) {
    max_count = std::max(max_count, t.count);
  }
  return max_count;
}

void Schedule::validate() const {
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    for (const auto& t : steps_[s].transfers) {
      require(t.src < num_nodes_ && t.dst < num_nodes_,
              "Schedule: node id out of range in step " + std::to_string(s));
      require(t.src != t.dst,
              "Schedule: self-transfer in step " + std::to_string(s));
      require(t.count >= 1 && t.offset + t.count <= elements_,
              "Schedule: element range out of bounds in step " +
                  std::to_string(s));
    }
  }
}

Circuit circuit_of(const Transfer& transfer) {
  Circuit c;
  c.src = transfer.src;
  c.dst = transfer.dst;
  if (transfer.direction.has_value()) {
    c.direction =
        *transfer.direction == topo::Direction::kClockwise ? 1 : 2;
  }
  return c;
}

namespace {

/// Sorted, deduplicated circuit set of one step, reusing `scratch`'s
/// capacity across steps.
void step_circuits(const Step& step, std::vector<Circuit>& scratch) {
  scratch.clear();
  scratch.reserve(step.transfers.size());
  for (const Transfer& t : step.transfers) scratch.push_back(circuit_of(t));
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
}

}  // namespace

std::vector<ReconfigDelta> reconfig_deltas(const Schedule& schedule) {
  std::vector<ReconfigDelta> deltas;
  deltas.reserve(schedule.num_steps());
  std::vector<Circuit> previous;  // sorted, deduplicated
  std::vector<Circuit> current;
  for (const Step& step : schedule.steps()) {
    step_circuits(step, current);

    ReconfigDelta delta;
    std::set_difference(current.begin(), current.end(), previous.begin(),
                        previous.end(), std::back_inserter(delta.added));
    std::set_difference(previous.begin(), previous.end(), current.begin(),
                        current.end(), std::back_inserter(delta.removed));
    delta.kept = current.size() - delta.added.size();
    deltas.push_back(std::move(delta));
    std::swap(previous, current);
  }
  return deltas;
}

bool is_reconfig_free(const Schedule& schedule) {
  std::vector<Circuit> previous;
  std::vector<Circuit> current;
  bool first = true;
  for (const Step& step : schedule.steps()) {
    step_circuits(step, current);
    if (!first && current != previous) return false;
    first = false;
    std::swap(previous, current);
  }
  return true;
}

ChunkRange chunk_range(std::size_t elements, std::size_t chunks,
                       std::size_t index) {
  require(chunks >= 1 && index < chunks, "chunk_range: bad chunk index");
  const std::size_t base = elements / chunks;
  const std::size_t extra = elements % chunks;
  const std::size_t count = base + (index < extra ? 1 : 0);
  const std::size_t offset =
      index * base + std::min<std::size_t>(index, extra);
  return ChunkRange{offset, count};
}

}  // namespace wrht::coll
