// Data-level schedule executor.
//
// Runs a Schedule against real per-node buffers to verify that the schedule
// implements All-reduce semantics. Transfers within a step are concurrent:
// every sender is read with beginning-of-step (snapshot) values, exactly as
// hardware that launches all of a step's lightpaths simultaneously would.
#pragma once

#include <cstdint>
#include <vector>

#include "wrht/collectives/schedule.hpp"
#include "wrht/common/rng.hpp"
#include "wrht/obs/trace.hpp"

namespace wrht::coll {

class Executor {
 public:
  /// Executes `schedule` over `buffers` in place.
  /// `buffers` must hold schedule.num_nodes() vectors of
  /// schedule.elements() doubles each.
  static void run(const Schedule& schedule,
                  std::vector<std::vector<double>>& buffers);

  /// Observed variant: accumulates "executor.*" counters and emits one
  /// logical-time span per step (the executor has no physical timebase, so
  /// spans are laid out one microsecond per step index).
  static void run(const Schedule& schedule,
                  std::vector<std::vector<double>>& buffers,
                  const obs::Probe& probe);

  /// Generates deterministic per-node inputs, runs the schedule, and checks
  /// that every node ends with the element-wise sum over all nodes.
  /// Returns the maximum absolute error observed (0 means exact).
  /// Throws wrht::Error if any element deviates by more than `tolerance`.
  static double verify_allreduce(const Schedule& schedule, Rng& rng,
                                 double tolerance = 1e-9);

  /// Checks Reduce semantics: after the schedule, node `root` holds the
  /// element-wise sum of all initial buffers (other nodes unconstrained).
  static double verify_reduce(const Schedule& schedule, NodeId root, Rng& rng,
                              double tolerance = 1e-9);

  /// Checks Broadcast semantics: after the schedule, every node holds
  /// node `root`'s initial buffer.
  static double verify_broadcast(const Schedule& schedule, NodeId root,
                                 Rng& rng, double tolerance = 1e-9);

  /// Checks Reduce-scatter semantics: node i ends holding the global sum on
  /// chunk i of `chunks` equal chunks (its other elements unconstrained).
  static double verify_reduce_scatter(const Schedule& schedule,
                                      std::size_t chunks, Rng& rng,
                                      double tolerance = 1e-9);

  /// Checks All-gather semantics: chunk i of `chunks` starts valid only on
  /// node i; afterwards every node holds every chunk.
  static double verify_allgather(const Schedule& schedule, std::size_t chunks,
                                 Rng& rng, double tolerance = 1e-9);
};

}  // namespace wrht::coll
