// Polymorphic execution-backend interface.
//
// Every engine that can price a coll::Schedule — the optical ring, the
// optical torus, the electrical flow-level fat tree, the packet-level fat
// tree, and the schedule-only step counter — implements Backend. The
// concrete engine classes (optics::RingNetwork & co.) keep their full
// native APIs; a Backend adapter wraps one engine instance and exposes the
// one seam everything above the engines needs:
//
//     Schedule IR  ->  Backend::execute()  ->  RunReport
//
// Sweeps (exp::SweepRunner), the differential oracle (verify::) and the
// conformance suite are written once against this interface, so adding a
// backend means implementing one class and registering one factory.
//
// Thread-safety: a Backend instance is NOT safe for concurrent execute()
// calls (pattern caches are per-instance); create one instance per worker
// (exp::SweepRunner does).
#pragma once

#include <memory>
#include <string>

#include "wrht/collectives/schedule.hpp"
#include "wrht/obs/occupancy.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/obs/trace.hpp"

namespace wrht::net {

/// What a backend can and cannot do; the conformance suite and sweep
/// engine branch on these instead of on backend names.
struct BackendCapabilities {
  /// Honours coll::Transfer::direction routing hints (optical rings).
  bool supports_direction_hints = false;
  /// Performs routing-and-wavelength assignment and can reject schedules
  /// that exhaust the wavelength budget.
  bool validates_rwa = false;
  /// Reports per-step wavelength usage in its StepReports.
  bool reports_wavelengths = false;
  /// Accepts only transfers that stay within one torus row or column.
  bool dimension_local_transfers_only = false;
  /// Produces real durations (false for the schedule-only step counter).
  bool prices_time = true;
  /// Can fill RunReport::{breakdown, utilization, resources_observed} when
  /// asked (BackendConfig::collect_utilization or a caller-supplied
  /// obs::Probe::occupancy sampler).
  bool reports_utilization = false;
  /// Honours ReconfigPolicy::kOverlapped — hides reconfiguration delay
  /// behind prior transmissions instead of silently falling back to serial
  /// pricing. Backends without a reconfiguration notion leave this false
  /// and price all policies identically.
  bool supports_reconfig_overlap = false;
};

class Backend {
 public:
  virtual ~Backend();

  /// Stable registry name, e.g. "optical-ring" (also stamped into
  /// RunReport::backend).
  [[nodiscard]] virtual std::string name() const = 0;
  /// One-line human description for listings and --help output.
  [[nodiscard]] virtual std::string describe() const = 0;
  [[nodiscard]] virtual BackendCapabilities capabilities() const = 0;

  /// Prices `schedule` and returns the backend-neutral report. Throws
  /// InfeasibleSchedule when the schedule cannot be carried.
  /// Implementations re-expose the unobserved overload below with
  /// `using net::Backend::execute;`.
  [[nodiscard]] virtual RunReport execute(const coll::Schedule& schedule,
                                          const obs::Probe& probe) const = 0;

  /// Unobserved convenience overload.
  [[nodiscard]] RunReport execute(const coll::Schedule& schedule) const {
    return execute(schedule, obs::Probe{});
  }

  /// Prices `schedule` as if it began at absolute time `start`: step starts
  /// in the report are >= start while total_time stays the run's duration.
  /// Every engine here is time-invariant, so the default implementation —
  /// execute() then shift the step timeline — is exact; engines with a
  /// native clock offset (the optical ring) override it to run shifted.
  /// The service layer (wrht::svc) uses this to place each admitted job's
  /// timeline at its grant time on the shared fabric clock.
  [[nodiscard]] virtual RunReport execute_at(const coll::Schedule& schedule,
                                             const obs::Probe& probe,
                                             Seconds start) const;
};

/// Emits the backend-neutral "net.*" counters every adapter shares:
/// net.executions, net.steps and net.traffic_elements. Gives the
/// conformance suite one uniform traffic-accounting surface per backend.
void count_schedule(const obs::Probe& probe, const coll::Schedule& schedule);

/// Shared adapter plumbing for utilization collection. Construct with the
/// caller's probe and the adapter's collect_utilization switch; run the
/// engine with probe() — it carries a backend-owned occupancy sampler when
/// collection is on and the caller did not bring their own — then call
/// finish() to fold the samples into the report (breakdown, utilization,
/// resources_observed, per-step breakdowns). When neither the switch nor a
/// caller sampler is present this is all pass-through and costs nothing.
class ScopedUtilization {
 public:
  ScopedUtilization(const obs::Probe& probe, bool collect);

  [[nodiscard]] const obs::Probe& probe() const { return probe_; }
  /// Attaches the analysis to `report` if sampling was active.
  void finish(RunReport& report) const;

 private:
  obs::OccupancySampler sampler_;
  obs::Probe probe_;
};

/// Assembles the uniform per-step reports used by barrier-style backends
/// (one duration per step, labels taken from the schedule when available):
/// cumulative starts, "step <i>" fallback labels, rounds left at 1.
[[nodiscard]] std::vector<StepReport> uniform_step_reports(
    const std::vector<Seconds>& step_times);

}  // namespace wrht::net
