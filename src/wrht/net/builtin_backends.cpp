// Wires every backend this library ships into the global registry.
//
// Lives in its own translation unit (and CMake module, wrht_backends)
// because the net core cannot link against the engine libraries that sit
// above it; anything that links wrht::all gets this definition.
#include <mutex>

#include "wrht/electrical/electrical_backend.hpp"
#include "wrht/net/registry.hpp"
#include "wrht/net/schedule_only.hpp"
#include "wrht/optical/optical_backend.hpp"

namespace wrht::net {

void register_builtin_backends() {
  static std::once_flag once;
  std::call_once(once, [] {
    BackendRegistry& registry = BackendRegistry::instance();
    optics::register_optical_backends(registry);
    elec::register_electrical_backends(registry);
    registry.register_backend(
        "schedule-only",
        "walks the schedule and reports step structure; prices no time",
        [](const BackendConfig& config) -> std::unique_ptr<Backend> {
          return std::make_unique<ScheduleOnlyBackend>(config.num_nodes);
        });
  });
}

}  // namespace wrht::net
