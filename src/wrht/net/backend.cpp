#include "wrht/net/backend.hpp"

#include "wrht/obs/analysis.hpp"

namespace wrht::net {

Backend::~Backend() = default;

RunReport Backend::execute_at(const coll::Schedule& schedule,
                              const obs::Probe& probe, Seconds start) const {
  RunReport report = execute(schedule, probe);
  for (StepReport& step : report.step_reports) step.start += start;
  return report;
}

ScopedUtilization::ScopedUtilization(const obs::Probe& probe, bool collect)
    : probe_(probe) {
  if (collect && probe_.occupancy == nullptr) probe_.occupancy = &sampler_;
}

void ScopedUtilization::finish(RunReport& report) const {
  if (probe_.occupancy == nullptr) return;
  obs::attach_utilization(report, *probe_.occupancy);
}

void count_schedule(const obs::Probe& probe, const coll::Schedule& schedule) {
  if (probe.counters == nullptr) return;
  probe.count("net.executions");
  probe.count("net.steps", schedule.num_steps());
  probe.count("net.traffic_elements", schedule.total_traffic_elements());
}

std::vector<StepReport> uniform_step_reports(
    const std::vector<Seconds>& step_times) {
  std::vector<StepReport> out;
  out.reserve(step_times.size());
  Seconds cursor(0.0);
  for (std::size_t i = 0; i < step_times.size(); ++i) {
    StepReport step;
    step.label = "step " + std::to_string(i);
    step.start = cursor;
    step.duration = step_times[i];
    out.push_back(std::move(step));
    cursor += step_times[i];
  }
  return out;
}

}  // namespace wrht::net
