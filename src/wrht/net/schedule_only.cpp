#include "wrht/net/schedule_only.hpp"

#include "wrht/common/error.hpp"

namespace wrht::net {

RunReport ScheduleOnlyBackend::execute(const coll::Schedule& schedule,
                                       const obs::Probe& probe) const {
  require(schedule.num_nodes() <= num_nodes_,
          "ScheduleOnlyBackend: schedule spans more nodes than configured");
  schedule.validate();
  count_schedule(probe, schedule);

  RunReport report;
  report.backend = name();
  report.steps = schedule.num_steps();
  report.step_reports.reserve(schedule.num_steps());
  for (std::size_t i = 0; i < schedule.num_steps(); ++i) {
    const coll::Step& step = schedule.steps()[i];
    StepReport sr;
    sr.label = step.label.empty() ? "step " + std::to_string(i) : step.label;
    sr.rounds = step.transfers.empty() ? 0 : 1;
    report.rounds += sr.rounds;
    if (probe.trace != nullptr) {
      obs::TraceSpan span;
      span.name = sr.label;
      span.category = "schedule-step";
      probe.span(span);
    }
    report.step_reports.push_back(std::move(sr));
  }
  return report;
}

}  // namespace wrht::net
