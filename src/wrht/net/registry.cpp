#include "wrht/net/registry.hpp"

#include "wrht/common/error.hpp"

namespace wrht::net {

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(const std::string& name,
                                       std::string description,
                                       BackendFactory factory) {
  require(static_cast<bool>(factory), "BackendRegistry: null factory");
  require(!name.empty(), "BackendRegistry: empty backend name");
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_[name] = Entry{std::move(description), std::move(factory)};
}

bool BackendRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

std::vector<std::string> BackendRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::string BackendRegistry::describe(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? std::string{} : it->second.description;
}

std::unique_ptr<Backend> BackendRegistry::create(
    const std::string& name, const BackendConfig& config) const {
  require(config.num_nodes > 0,
          "BackendRegistry::create: config.num_nodes must be > 0");
  BackendFactory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::string known;
      for (const auto& [registered, entry] : entries_) {
        if (!known.empty()) known += ", ";
        known += registered;
      }
      throw InvalidArgument("BackendRegistry: unknown backend '" + name +
                            "' (registered: " + known + ")");
    }
    factory = it->second.factory;
  }
  // Factories run outside the lock: they may construct whole topologies.
  return factory(config);
}

}  // namespace wrht::net
