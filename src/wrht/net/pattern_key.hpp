// Shared pattern-cache keying for schedule-executing backends.
//
// Both the optical ring and the electrical fat tree memoize per-step
// evaluations: structurally identical steps (all 2(N-1) Ring All-reduce
// steps, the repeated H-Ring stages, ...) share one RWA / fair-sharing
// evaluation. The key is an order-insensitive FNV-1a over the sorted
// (src, dst[, direction]) tuples plus the step's largest transfer count.
// Per-transfer counts are deliberately excluded — chunk sizes rotate by
// +/-1 element between ring steps without changing routing or the
// dominating payload. The two engines used to carry private copies of
// this hash; this is the single definition.
#pragma once

#include <cstdint>

#include "wrht/collectives/schedule.hpp"

namespace wrht::net {

/// With `include_direction` the optional optical routing hint of each
/// transfer participates in the key (two steps that differ only in pinned
/// ring directions route differently); electrical backends ignore hints
/// and pass false so hint-variants share one cache entry.
[[nodiscard]] std::uint64_t step_signature(const coll::Step& step,
                                           bool include_direction);

}  // namespace wrht::net
