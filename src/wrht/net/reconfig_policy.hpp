// How the MRR reconfiguration delay is charged, shared by every backend.
//
// The paper's Eq. (6) charges the full 25 us reconfiguration delay serially
// on every communication round. Two refinements from the literature relax
// that: a retune-aware control plane keeps static circuits up and charges
// only rounds whose micro-ring tuning actually changes (quantified by
// bench_ablation_reconfig), and a lookahead control plane overlaps the
// retune for round k+1 with round k's transmission (SWOT, Hammer et al.),
// so only the residual max(0, reconfig - prior transmission) is exposed on
// the critical path (bench_ablation_overlap).
//
// This knob used to be a bool in net::BackendConfig awkwardly mapped onto a
// nested enum in optics::OpticalConfig; like net::RateConvention it is now
// a single shared definition so the two layers cannot drift apart.
#pragma once

#include <string>

namespace wrht::net {

enum class ReconfigPolicy {
  /// Every round pays the full reconfiguration delay (the paper's Eq. 6).
  kEveryRound,
  /// Only rounds whose MRR tuning differs from the previous round's pay
  /// (static circuits stay up for free).
  kOnRetune,
  /// Every round retunes, but the retune for round k+1 proceeds during
  /// round k's transmission; only max(0, reconfig - prior transmission)
  /// residual delay is charged. Never slower than kEveryRound.
  kOverlapped,
};

/// Stable lower-case name ("every_round", "on_retune", "overlapped") for
/// CSV columns and CLI flags.
[[nodiscard]] inline std::string to_string(ReconfigPolicy policy) {
  switch (policy) {
    case ReconfigPolicy::kEveryRound:
      return "every_round";
    case ReconfigPolicy::kOnRetune:
      return "on_retune";
    case ReconfigPolicy::kOverlapped:
      return "overlapped";
  }
  return "unknown";
}

}  // namespace wrht::net
