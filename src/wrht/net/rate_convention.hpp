// The Eq. (6) rate convention, shared by every backend.
//
// The paper's numerics evaluate d/B with d in *bytes* against B = 40e9,
// i.e. an effective lane throughput of 8x the nominal line rate.
// kPaperConvention reproduces the paper's reported ratios; kStrictBits
// serializes bits physically (rate/8 bytes per second). Both the optical
// and the electrical simulators used to carry their own copy of this knob
// (a nested enum and a bool that could silently drift apart); this is the
// single definition both configs now use.
#pragma once

namespace wrht::net {

enum class RateConvention {
  kPaperConvention,  ///< drain d bytes against B bits/s (the paper's Eq. 6)
  kStrictBits,       ///< physical serialization: B/8 bytes per second
};

/// Effective serialization rate in bytes per second for a nominal line rate
/// of `bits_per_second` under `convention`.
[[nodiscard]] inline double effective_bytes_per_second(
    double bits_per_second, RateConvention convention) {
  return convention == RateConvention::kPaperConvention ? bits_per_second
                                                        : bits_per_second / 8.0;
}

}  // namespace wrht::net
