// The trivial backend: counts steps without pricing time.
//
// Step-count tables (Table 1) and schedule-shape sweeps need the Schedule
// IR walked under the same Backend/RunReport contract as the real engines,
// but with no network model at all. ScheduleOnlyBackend reports zero
// durations, one round per non-empty step, and the shared net.* traffic
// counters — and doubles as the minimal example of how to write a backend.
#pragma once

#include <cstdint>

#include "wrht/net/backend.hpp"

namespace wrht::net {

class ScheduleOnlyBackend final : public Backend {
 public:
  explicit ScheduleOnlyBackend(std::uint32_t num_nodes)
      : num_nodes_(num_nodes) {}

  [[nodiscard]] std::string name() const override { return "schedule-only"; }
  [[nodiscard]] std::string describe() const override {
    return "walks the schedule and reports step structure; prices no time";
  }
  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.prices_time = false;
    return caps;
  }

  using Backend::execute;
  [[nodiscard]] RunReport execute(const coll::Schedule& schedule,
                                  const obs::Probe& probe) const override;

 private:
  std::uint32_t num_nodes_;
};

}  // namespace wrht::net
