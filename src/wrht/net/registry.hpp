// Runtime registry of execution backends, mirroring coll::Registry.
//
// Sweeps and verification tools look backends up by name and construct
// them from the portable BackendConfig, so "price this schedule on every
// registered backend" is table-driven. Concrete modules register their
// factories (optics::register_optical_backends, elec::register_electrical_
// backends); register_builtin_backends() wires up everything this library
// ships. The registry itself is thread-safe: exp::SweepRunner workers
// create backends concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "wrht/net/backend.hpp"
#include "wrht/net/rate_convention.hpp"
#include "wrht/net/reconfig_policy.hpp"
#include "wrht/net/resource_lease.hpp"

namespace wrht::net {

/// The portable subset of backend configuration a sweep can vary. Factories
/// map these onto their engine's native config (OpticalConfig,
/// ElectricalConfig) and leave everything else at the engine's defaults;
/// callers needing full control construct the concrete backend class
/// directly or register a custom factory closing over a native config.
struct BackendConfig {
  std::uint32_t num_nodes = 0;   ///< required (> 0)
  std::uint32_t wavelengths = 64;
  RateConvention convention = RateConvention::kPaperConvention;
  /// Optical: enforce the per-node MRR budget (benches disable it — the
  /// paper's sweeps "assume there is no constraint of optical
  /// communication", §5.4).
  bool validate_node_capacity = true;
  /// Optical: how the MRR reconfiguration delay is charged — serially on
  /// every round (the paper's Eq. 6 default), only on actual retunes, or
  /// overlapped with the previous round's transmission. Shared with
  /// OpticalConfig (same enum), mirroring the RateConvention unification.
  ReconfigPolicy reconfig_policy = ReconfigPolicy::kEveryRound;
  /// Optical: random-fit RWA instead of first-fit, seeded by rng_seed so
  /// parallel sweeps stay deterministic.
  bool random_fit_rwa = false;
  /// Optical: workers for the batched first-fit RWA over a schedule's
  /// distinct step patterns (0 = WRHT_RWA_THREADS / hardware concurrency).
  /// Byte-identical results at any worker count.
  unsigned rwa_threads = 0;
  std::uint64_t rng_seed = 2023;
  /// Optical torus: grid shape; both 0 picks the most even rows x cols
  /// factorization of num_nodes.
  std::uint32_t torus_rows = 0;
  std::uint32_t torus_cols = 0;
  /// Sample per-resource occupancy during execute() and fill the report's
  /// breakdown/utilization fields (backends whose capabilities() report
  /// reports_utilization). Off by default: unobserved runs stay free.
  bool collect_utilization = false;
  /// Fabric slice this job may touch (multi-tenant runs; see
  /// net/resource_lease.hpp). Optical backends constrain RWA to
  /// [lease.w_lo, lease.w_hi); electrical backends scale every link to
  /// the lease's share of `wavelengths`. The default full lease keeps
  /// every backend byte-identical to pre-lease behaviour.
  ResourceLease lease{};

  BackendConfig& with_reconfig_policy(ReconfigPolicy v) {
    reconfig_policy = v;
    return *this;
  }
  BackendConfig& with_lease(ResourceLease v) {
    lease = v;
    return *this;
  }
};

using BackendFactory =
    std::function<std::unique_ptr<Backend>(const BackendConfig&)>;

class BackendRegistry {
 public:
  /// Global registry. Starts empty; call register_builtin_backends() (or a
  /// module's register_* function) before looking anything up.
  static BackendRegistry& instance();

  /// Registers or replaces a factory under `name`.
  void register_backend(const std::string& name, std::string description,
                        BackendFactory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  /// One-line description recorded at registration ("" for unknown names).
  [[nodiscard]] std::string describe(const std::string& name) const;

  /// Constructs a backend. Throws InvalidArgument for unknown names (the
  /// message lists every registered backend) and for config.num_nodes == 0.
  [[nodiscard]] std::unique_ptr<Backend> create(
      const std::string& name, const BackendConfig& config) const;

 private:
  BackendRegistry() = default;

  struct Entry {
    std::string description;
    BackendFactory factory;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Registers every backend this library ships — "optical-ring",
/// "optical-torus", "electrical-flow", "electrical-packet" and
/// "schedule-only" — in BackendRegistry::instance(). Idempotent and
/// thread-safe; the sweep engine calls it once per process.
void register_builtin_backends();

}  // namespace wrht::net
