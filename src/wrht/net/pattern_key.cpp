#include "wrht/net/pattern_key.hpp"

#include <algorithm>
#include <vector>

namespace wrht::net {

std::uint64_t step_signature(const coll::Step& step, bool include_direction) {
  std::vector<std::uint64_t> keys;
  keys.reserve(step.transfers.size() + 1);
  std::size_t max_count = 0;
  for (const auto& t : step.transfers) {
    std::uint64_t dir_bits = 0;
    if (include_direction && t.direction) {
      dir_bits = *t.direction == topo::Direction::kClockwise ? 1 : 2;
    }
    keys.push_back((static_cast<std::uint64_t>(t.src) << 34) ^
                   (static_cast<std::uint64_t>(t.dst) << 4) ^ dir_bits);
    max_count = std::max(max_count, t.count);
  }
  keys.push_back(0x8000'0000'0000'0000ull | max_count);
  std::sort(keys.begin(), keys.end());
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t k : keys) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (k >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace wrht::net
