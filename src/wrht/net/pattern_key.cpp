#include "wrht/net/pattern_key.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <vector>

namespace wrht::net {

namespace {

/// Steps with at most this many transfers hash from a stack buffer; the
/// signature is called once per step on every execute(), so avoiding the
/// heap allocation matters for schedules with millions of small steps.
constexpr std::size_t kSmallStep = 64;

std::uint64_t hash_keys(std::uint64_t* keys, std::size_t n) {
  std::sort(keys, keys + n);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (k >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::uint64_t transfer_key(const coll::Transfer& t, bool include_direction) {
  std::uint64_t dir_bits = 0;
  if (include_direction && t.direction) {
    dir_bits = *t.direction == topo::Direction::kClockwise ? 1 : 2;
  }
  return (static_cast<std::uint64_t>(t.src) << 34) ^
         (static_cast<std::uint64_t>(t.dst) << 4) ^ dir_bits;
}

}  // namespace

std::uint64_t step_signature(const coll::Step& step, bool include_direction) {
  const std::size_t n = step.transfers.size() + 1;
  std::array<std::uint64_t, kSmallStep + 1> small;
  std::vector<std::uint64_t> spill;
  std::uint64_t* keys = small.data();
  if (n > small.size()) {
    spill.resize(n);
    keys = spill.data();
  }

  std::size_t max_count = 0;
  std::size_t i = 0;
  for (const auto& t : step.transfers) {
    keys[i++] = transfer_key(t, include_direction);
    max_count = std::max(max_count, t.count);
  }
  keys[i++] = 0x8000'0000'0000'0000ull | max_count;
  return hash_keys(keys, i);
}

}  // namespace wrht::net
