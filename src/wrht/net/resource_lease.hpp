// Tenant lease on a slice of a shared fabric.
//
// Every engine used to price one all-reduce that owned the entire fabric;
// a real optical interconnect multiplexes many concurrent training jobs
// over sliced wavelength budgets (ROADMAP item 1; Zhou et al., "To
// Reconfigure or Not to Reconfigure"). A ResourceLease names the slice a
// job may touch: the wavelength sub-range [w_lo, w_hi) of every fiber, and
// the tenant the slice is charged to.
//
// The default-constructed lease is the FULL fabric — w_lo == w_hi == 0 is
// the sentinel — so every existing single-job call site prices exactly as
// before (the conformance suite and test_scale_equivalence pin this
// byte-identically). Engines consume the lease as follows:
//
//   * optical (ring/torus): RWA first-fit and random-fit scan wavelengths
//     in [w_lo, w_hi) only. A leased run is equivalent to a full-fabric
//     run on a (w_hi - w_lo)-wavelength fiber with every assigned
//     wavelength index shifted up by w_lo — the fuzzer's slice-equivalence
//     invariant.
//   * electrical: the fabric has no wavelength notion, so the lease grants
//     the job width/fabric of every link's bandwidth (the max-min fair
//     share a wavelength-proportional slicer would converge to).
#pragma once

#include <cstdint>
#include <string>

#include "wrht/common/error.hpp"

namespace wrht::net {

struct ResourceLease {
  /// Leased wavelength sub-range [w_lo, w_hi); w_lo == w_hi == 0 means the
  /// full fabric, whatever its width.
  std::uint32_t w_lo = 0;
  std::uint32_t w_hi = 0;
  /// Tenant the slice is charged to (reporting/fairness only; pricing is
  /// tenant-blind).
  std::uint32_t tenant = 0;

  [[nodiscard]] bool full() const { return w_lo == 0 && w_hi == 0; }

  /// First wavelength index past the leased slice on a `fabric`-wavelength
  /// fiber (the full width when the lease is full).
  [[nodiscard]] std::uint32_t clamp_hi(std::uint32_t fabric) const {
    return full() ? fabric : w_hi;
  }

  /// Number of wavelengths the lease grants on a `fabric`-wavelength fiber.
  [[nodiscard]] std::uint32_t width(std::uint32_t fabric) const {
    return full() ? fabric : w_hi - w_lo;
  }

  /// Fraction of the fabric the lease grants, in (0, 1]. A full lease (or
  /// an unknown fabric width of 0) is 1.0.
  [[nodiscard]] double share(std::uint32_t fabric) const {
    if (full() || fabric == 0) return 1.0;
    return static_cast<double>(width(fabric)) / static_cast<double>(fabric);
  }

  /// Throws InvalidArgument unless the lease is full or a non-empty slice
  /// inside a `fabric`-wavelength fiber.
  void validate(std::uint32_t fabric) const {
    if (full()) return;
    require(w_lo < w_hi, "ResourceLease: empty slice [" +
                             std::to_string(w_lo) + ", " +
                             std::to_string(w_hi) + ")");
    require(w_hi <= fabric,
            "ResourceLease: slice [" + std::to_string(w_lo) + ", " +
                std::to_string(w_hi) + ") exceeds the fabric's " +
                std::to_string(fabric) + " wavelengths");
  }

  /// "full" or "[lo, hi)@tenant" for logs and error messages.
  [[nodiscard]] std::string to_string() const {
    if (full()) return "full";
    return "[" + std::to_string(w_lo) + ", " + std::to_string(w_hi) +
           ")@t" + std::to_string(tenant);
  }

  friend bool operator==(const ResourceLease&, const ResourceLease&) = default;
};

/// Builds the slice [w_lo, w_lo + width); a zero-width request throws.
[[nodiscard]] inline ResourceLease slice_lease(std::uint32_t w_lo,
                                               std::uint32_t width,
                                               std::uint32_t tenant = 0) {
  require(width >= 1, "slice_lease: zero-width slice");
  return ResourceLease{w_lo, w_lo + width, tenant};
}

}  // namespace wrht::net
