// Environment-variable parsing shared by every threaded subsystem.
//
// WRHT_RWA_THREADS and WRHT_SWEEP_THREADS (and any future worker knob)
// share one validation story: only a fully-consumed positive integer in
// range counts; "0", "-3", "abc", "8x" and overflows warn and fall back
// instead of silently misbehaving (0 workers would deadlock a pool, a
// negative cast to unsigned would spawn billions).
#pragma once

namespace wrht {

/// Hard ceiling on any worker count read from the environment.
inline constexpr unsigned kMaxEnvThreads = 65536;

/// Reads the environment variable `name` as a worker count. Returns the
/// parsed value when it is a fully-consumed positive integer at most
/// kMaxEnvThreads. An unset variable returns `fallback` silently; a set
/// but invalid value (zero, negative, trailing garbage, overflow) logs a
/// warning naming the variable and the fallback, then returns `fallback`.
[[nodiscard]] unsigned thread_count_from_env(const char* name,
                                             unsigned fallback);

}  // namespace wrht
