#include "wrht/common/env.hpp"

#include <cerrno>
#include <cstdlib>

#include "wrht/common/log.hpp"

namespace wrht {

unsigned thread_count_from_env(const char* name, unsigned fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(env, &end, 10);
  if (end != env && *end == '\0' && errno == 0 && parsed > 0 &&
      parsed <= static_cast<long>(kMaxEnvThreads)) {
    return static_cast<unsigned>(parsed);
  }
  WRHT_LOG_WARN << name << "='" << env << "' is not a positive integer (max "
                << kMaxEnvThreads << "); falling back to " << fallback;
  return fallback;
}

}  // namespace wrht
