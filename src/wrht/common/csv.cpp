#include "wrht/common/csv.hpp"

#include "wrht/common/error.hpp"

namespace wrht {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), arity_(header.size()) {
  require(out_.good(), "CsvWriter: cannot open " + path);
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  require(cells.size() == arity_, "CsvWriter: row arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace wrht
