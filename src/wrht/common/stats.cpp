#include "wrht/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "wrht/common/error.hpp"

namespace wrht {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  require(n_ > 0, "RunningStats: empty");
  return mean_;
}

double RunningStats::variance() const {
  require(n_ > 1, "RunningStats: variance needs n >= 2");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  require(n_ > 0, "RunningStats: empty");
  return min_;
}

double RunningStats::max() const {
  require(n_ > 0, "RunningStats: empty");
  return max_;
}

double geometric_mean(const std::vector<double>& values) {
  require(!values.empty(), "geometric_mean: empty input");
  double log_sum = 0.0;
  for (const double v : values) {
    require(v > 0.0, "geometric_mean: values must be positive");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(const std::vector<double>& values) {
  require(!values.empty(), "arithmetic_mean: empty input");
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double mean_reduction_percent(const std::vector<double>& ours,
                              const std::vector<double>& baseline) {
  require(ours.size() == baseline.size() && !ours.empty(),
          "mean_reduction_percent: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < ours.size(); ++i) {
    require(baseline[i] > 0.0, "mean_reduction_percent: baseline must be > 0");
    sum += (1.0 - ours[i] / baseline[i]) * 100.0;
  }
  return sum / static_cast<double>(ours.size());
}

double percentile(const std::vector<double>& values, double q) {
  require(!values.empty(), "percentile: empty input");
  require(q >= 0.0 && q <= 1.0, "percentile: q must be in [0, 1]");
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace wrht
