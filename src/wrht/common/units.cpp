#include "wrht/common/units.hpp"

#include <array>
#include <cstdio>

namespace wrht {

PowerDbm power_sum(PowerDbm a, PowerDbm b) {
  return PowerDbm::from_milliwatts(a.milliwatts() + b.milliwatts());
}

namespace {

std::string format_scaled(double value, const char* unit) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3g %s", value, unit);
  return buf.data();
}

}  // namespace

std::string to_string(Bytes b) {
  const double v = static_cast<double>(b.count());
  if (v >= 1e9) return format_scaled(v / (1 << 30), "GiB");
  if (v >= 1e6) return format_scaled(v / (1 << 20), "MiB");
  if (v >= 1e3) return format_scaled(v / (1 << 10), "KiB");
  return format_scaled(v, "B");
}

std::string to_string(Seconds s) {
  const double v = s.count();
  if (v >= 1.0) return format_scaled(v, "s");
  if (v >= 1e-3) return format_scaled(v * 1e3, "ms");
  if (v >= 1e-6) return format_scaled(v * 1e6, "us");
  if (v >= 1e-9) return format_scaled(v * 1e9, "ns");
  return format_scaled(v * 1e15, "fs");
}

std::string to_string(BitsPerSecond r) {
  const double v = r.count();
  if (v >= 1e9) return format_scaled(v / 1e9, "Gbit/s");
  if (v >= 1e6) return format_scaled(v / 1e6, "Mbit/s");
  return format_scaled(v, "bit/s");
}

}  // namespace wrht
