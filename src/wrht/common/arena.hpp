// Monotonic chunked arena + std-allocator adapter.
//
// The Schedule IR allocates one small vector per step (Transfers) plus the
// step list itself; a large build (N ~ 10^5..10^6 nodes) turns into hundreds
// of thousands of individual mallocs with poor locality. Arena replaces
// them with bump-pointer allocation out of geometrically growing chunks: a
// whole schedule build costs O(log total_bytes) mallocs and lays Transfers
// of consecutive steps out contiguously (SoA-friendly for the RWA and DES
// inner loops that stream over them).
//
// Deallocation is a no-op — memory is reclaimed when the Arena dies. That
// is the right trade for schedules, which are built once, read many times,
// and dropped whole; vector growth abandons the old block inside the arena,
// bounded by the usual geometric-growth constant factor.
//
// ArenaAllocator<T> is the std-allocator adapter. A default-constructed
// (null-arena) allocator falls back to operator new/delete, so containers
// declared with it but never bound to an Arena behave exactly like their
// std::allocator equivalents — this is what lets coll::Schedule offer both
// heap and arena storage behind one vector type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

namespace wrht::common {

class Arena {
 public:
  /// `first_chunk_bytes` sizes the initial chunk; later chunks double up
  /// to kMaxChunkBytes. Nothing is allocated until the first allocate().
  explicit Arena(std::size_t first_chunk_bytes = kDefaultFirstChunk);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (power of two).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Bytes handed out to callers (live + abandoned-by-growth).
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }
  /// Bytes reserved from the system across all chunks.
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }
  /// Number of system allocations (chunks) backing the arena.
  [[nodiscard]] std::size_t chunks() const { return num_chunks_; }

  static constexpr std::size_t kDefaultFirstChunk = 4 * 1024;
  static constexpr std::size_t kMaxChunkBytes = 4 * 1024 * 1024;

 private:
  struct Chunk {
    Chunk* prev = nullptr;
    std::size_t size = 0;  ///< usable bytes following the header
    // payload follows in the same system allocation
  };

  void grow(std::size_t min_bytes);

  Chunk* head_ = nullptr;
  std::byte* cursor_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t next_chunk_ = 0;
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
  std::size_t num_chunks_ = 0;
};

/// Std-allocator adapter. Null arena (the default) degrades to operator
/// new/delete. Stateful and non-propagating: container copies keep their
/// own allocator and copy elements, so assigning transfers across
/// schedules never silently re-homes a vector onto a foreign arena.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::false_type;
  using propagate_on_container_swap = std::false_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena memory is monotonic; freed with the arena.
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace wrht::common
