// CSV writer for benchmark series so figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace wrht {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header line.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);

  /// Escapes quotes/commas per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace wrht
