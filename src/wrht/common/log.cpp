#include "wrht/common/log.hpp"

#include <iostream>

namespace wrht {

namespace log_detail {

LogLevel& threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void emit(LogLevel level, const std::string& message) {
  static const char* const kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const auto idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::clog << "[wrht:" << kNames[idx] << "] " << message << '\n';
}

}  // namespace log_detail

LogLevel set_log_level(LogLevel level) {
  const LogLevel prev = log_detail::threshold();
  log_detail::threshold() = level;
  return prev;
}

LogLevel log_level() { return log_detail::threshold(); }

}  // namespace wrht
