#include "wrht/common/table.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "wrht/common/error.hpp"

namespace wrht {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "Table: row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return buf.data();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  print_row(header_);
  os << "|";
  for (const auto w : widths) os << std::string(w + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace wrht
