// Tiny leveled logger. Simulations are silent by default; examples turn on
// Info to narrate schedules, and tests can capture Debug traces.
#pragma once

#include <sstream>
#include <string>

namespace wrht {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_detail {
LogLevel& threshold();
void emit(LogLevel level, const std::string& message);
}  // namespace log_detail

/// Sets the global log threshold; returns the previous value.
LogLevel set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Stream-style log statement: LogLine(LogLevel::kInfo) << "step " << i;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_detail::threshold()) {
      log_detail::emit(level_, stream_.str());
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_detail::threshold()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define WRHT_LOG_DEBUG ::wrht::LogLine(::wrht::LogLevel::kDebug)
#define WRHT_LOG_INFO ::wrht::LogLine(::wrht::LogLevel::kInfo)
#define WRHT_LOG_WARN ::wrht::LogLine(::wrht::LogLevel::kWarn)
#define WRHT_LOG_ERROR ::wrht::LogLine(::wrht::LogLevel::kError)

}  // namespace wrht
