#include "wrht/common/arena.hpp"

#include <algorithm>
#include <cstdlib>

namespace wrht::common {

namespace {

std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t first_chunk_bytes)
    : next_chunk_(std::max<std::size_t>(first_chunk_bytes, 256)) {}

Arena::~Arena() {
  Chunk* chunk = head_;
  while (chunk != nullptr) {
    Chunk* prev = chunk->prev;
    ::operator delete(static_cast<void*>(chunk));
    chunk = prev;
  }
}

void Arena::grow(std::size_t min_bytes) {
  std::size_t size = next_chunk_;
  while (size < min_bytes) size *= 2;
  next_chunk_ = std::min(size * 2, kMaxChunkBytes);
  auto* raw = static_cast<std::byte*>(
      ::operator new(sizeof(Chunk) + size));
  auto* chunk = new (raw) Chunk;
  chunk->prev = head_;
  chunk->size = size;
  head_ = chunk;
  cursor_ = raw + sizeof(Chunk);
  end_ = cursor_ + size;
  reserved_ += size;
  ++num_chunks_;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  const std::size_t pad = align_up(addr, align) - addr;
  if (cursor_ == nullptr ||
      static_cast<std::size_t>(end_ - cursor_) < pad + bytes) {
    // Chunk headers are max-aligned by operator new, so a fresh chunk's
    // payload start is aligned for any ordinary type.
    grow(bytes + align);
    addr = reinterpret_cast<std::uintptr_t>(cursor_);
    cursor_ += align_up(addr, align) - addr;
  } else {
    cursor_ += pad;
  }
  void* out = cursor_;
  cursor_ += bytes;
  allocated_ += bytes;
  return out;
}

}  // namespace wrht::common
