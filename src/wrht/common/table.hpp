// Minimal fixed-width ASCII table printer used by the benchmark harnesses to
// emit paper-style tables (rows of algorithm x workload results).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace wrht {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with column auto-sizing and a header separator.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace wrht
