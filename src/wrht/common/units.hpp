// Strong unit types used across the WRHT library.
//
// The simulation mixes bytes, bits, seconds, bandwidths and optical powers in
// dB / dBm / mW. Mixing those up silently is the classic source of wrong
// simulator output, so each quantity gets its own vocabulary type with only
// the physically meaningful operations defined.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace wrht {

/// Data size in bytes (exact integer arithmetic).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t count() const { return value_; }
  [[nodiscard]] constexpr double bits() const {
    return static_cast<double>(value_) * 8.0;
  }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes rhs) {
    value_ += rhs.value_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes(a.value_ + b.value_);
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes(a.value_ - b.value_);
  }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) {
    return Bytes(a.value_ * k);
  }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) { return a * k; }
  /// Integer division rounding up; used to split payloads into chunks.
  [[nodiscard]] constexpr Bytes ceil_div(std::uint64_t k) const {
    return Bytes((value_ + k - 1) / k);
  }

 private:
  std::uint64_t value_ = 0;
};

constexpr Bytes operator""_B(unsigned long long v) { return Bytes(v); }
constexpr Bytes operator""_KiB(unsigned long long v) { return Bytes(v << 10); }
constexpr Bytes operator""_MiB(unsigned long long v) { return Bytes(v << 20); }
constexpr Bytes operator""_GiB(unsigned long long v) { return Bytes(v << 30); }

/// Simulated time in seconds (double; simulations span fs..minutes).
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double v) : value_(v) {}

  [[nodiscard]] constexpr double count() const { return value_; }
  [[nodiscard]] constexpr double micros() const { return value_ * 1e6; }
  [[nodiscard]] constexpr double millis() const { return value_ * 1e3; }

  constexpr auto operator<=>(const Seconds&) const = default;

  constexpr Seconds& operator+=(Seconds rhs) {
    value_ += rhs.value_;
    return *this;
  }
  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds(a.value_ + b.value_);
  }
  friend constexpr Seconds operator-(Seconds a, Seconds b) {
    return Seconds(a.value_ - b.value_);
  }
  friend constexpr Seconds operator*(Seconds a, double k) {
    return Seconds(a.value_ * k);
  }
  friend constexpr Seconds operator*(double k, Seconds a) { return a * k; }
  friend constexpr double operator/(Seconds a, Seconds b) {
    return a.value_ / b.value_;
  }

 private:
  double value_ = 0.0;
};

constexpr Seconds operator""_s(long double v) {
  return Seconds(static_cast<double>(v));
}
constexpr Seconds operator""_ms(long double v) {
  return Seconds(static_cast<double>(v) * 1e-3);
}
constexpr Seconds operator""_us(long double v) {
  return Seconds(static_cast<double>(v) * 1e-6);
}
constexpr Seconds operator""_ns(long double v) {
  return Seconds(static_cast<double>(v) * 1e-9);
}
constexpr Seconds operator""_fs(long double v) {
  return Seconds(static_cast<double>(v) * 1e-15);
}

/// Link / wavelength bandwidth in bits per second.
class BitsPerSecond {
 public:
  constexpr BitsPerSecond() = default;
  constexpr explicit BitsPerSecond(double v) : value_(v) {}

  [[nodiscard]] constexpr double count() const { return value_; }
  [[nodiscard]] constexpr double gbps() const { return value_ / 1e9; }

  constexpr auto operator<=>(const BitsPerSecond&) const = default;

  friend constexpr BitsPerSecond operator*(BitsPerSecond a, double k) {
    return BitsPerSecond(a.value_ * k);
  }
  friend constexpr BitsPerSecond operator*(double k, BitsPerSecond a) {
    return a * k;
  }
  friend constexpr BitsPerSecond operator+(BitsPerSecond a, BitsPerSecond b) {
    return BitsPerSecond(a.value_ + b.value_);
  }

 private:
  double value_ = 0.0;  // bits / second
};

constexpr BitsPerSecond operator""_Gbps(long double v) {
  return BitsPerSecond(static_cast<double>(v) * 1e9);
}
constexpr BitsPerSecond operator""_Mbps(long double v) {
  return BitsPerSecond(static_cast<double>(v) * 1e6);
}

/// Serialization delay of a payload on a link: bits / rate.
[[nodiscard]] constexpr Seconds transfer_time(Bytes payload,
                                              BitsPerSecond rate) {
  return Seconds(payload.bits() / rate.count());
}

/// Relative optical power gain/loss in decibels.
class Decibels {
 public:
  constexpr Decibels() = default;
  constexpr explicit Decibels(double v) : value_(v) {}

  [[nodiscard]] constexpr double count() const { return value_; }
  /// Linear power ratio 10^(dB/10).
  [[nodiscard]] double linear() const { return std::pow(10.0, value_ / 10.0); }

  constexpr auto operator<=>(const Decibels&) const = default;

  constexpr Decibels operator-() const { return Decibels(-value_); }

  friend constexpr Decibels operator+(Decibels a, Decibels b) {
    return Decibels(a.value_ + b.value_);
  }
  friend constexpr Decibels operator-(Decibels a, Decibels b) {
    return Decibels(a.value_ - b.value_);
  }
  friend constexpr Decibels operator*(Decibels a, double k) {
    return Decibels(a.value_ * k);
  }
  friend constexpr Decibels operator*(double k, Decibels a) { return a * k; }

 private:
  double value_ = 0.0;
};

constexpr Decibels operator""_dB(long double v) {
  return Decibels(static_cast<double>(v));
}

/// Absolute optical power in dBm (dB relative to 1 mW).
class PowerDbm {
 public:
  constexpr PowerDbm() = default;
  constexpr explicit PowerDbm(double v) : value_(v) {}

  [[nodiscard]] constexpr double count() const { return value_; }
  [[nodiscard]] double milliwatts() const {
    return std::pow(10.0, value_ / 10.0);
  }
  static PowerDbm from_milliwatts(double mw) {
    return PowerDbm(10.0 * std::log10(mw));
  }

  constexpr auto operator<=>(const PowerDbm&) const = default;

  /// Negates the dBm value (e.g. -30.0_dBm for a -30 dBm noise floor).
  constexpr PowerDbm operator-() const { return PowerDbm(-value_); }

  /// Attenuating an absolute power by a loss yields an absolute power.
  friend constexpr PowerDbm operator-(PowerDbm p, Decibels loss) {
    return PowerDbm(p.count() - loss.count());
  }
  friend constexpr PowerDbm operator+(PowerDbm p, Decibels gain) {
    return PowerDbm(p.count() + gain.count());
  }
  /// Difference of two absolute powers is a ratio in dB.
  friend constexpr Decibels operator-(PowerDbm a, PowerDbm b) {
    return Decibels(a.count() - b.count());
  }

 private:
  double value_ = 0.0;
};

constexpr PowerDbm operator""_dBm(long double v) {
  return PowerDbm(static_cast<double>(v));
}

/// Sum absolute powers in the linear (mW) domain.
[[nodiscard]] PowerDbm power_sum(PowerDbm a, PowerDbm b);

/// Human-readable formatting helpers (used by benches / examples).
[[nodiscard]] std::string to_string(Bytes b);
[[nodiscard]] std::string to_string(Seconds s);
[[nodiscard]] std::string to_string(BitsPerSecond r);

}  // namespace wrht
