// Streaming descriptive statistics (Welford) for benchmark aggregation.
#pragma once

#include <cstddef>
#include <vector>

namespace wrht {

class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive values (used for the paper's
/// "average reduction" aggregates, which compare ratio series).
[[nodiscard]] double geometric_mean(const std::vector<double>& values);

/// Arithmetic mean of a (non-empty) vector.
[[nodiscard]] double arithmetic_mean(const std::vector<double>& values);

/// Average percentage reduction of `ours` vs `baseline`, element-wise:
/// mean over i of (1 - ours[i]/baseline[i]) * 100. Matches the paper's
/// "reduces communication time by X% on average" aggregation.
[[nodiscard]] double mean_reduction_percent(const std::vector<double>& ours,
                                            const std::vector<double>& baseline);

/// The `q`-quantile (q in [0, 1]) of a non-empty sample, using linear
/// interpolation between closest ranks (R-7, the numpy/Excel default):
/// rank h = q * (n - 1), result = v[floor(h)] + frac(h) * (v[ceil(h)] -
/// v[floor(h)]) over the sorted values. `values` is copied, not mutated.
[[nodiscard]] double percentile(const std::vector<double>& values, double q);

}  // namespace wrht
