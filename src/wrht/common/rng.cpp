#include "wrht/common/rng.hpp"

#include <numeric>

namespace wrht {

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = uniform_int(0, i - 1);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<double> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = uniform_real(lo, hi);
  return v;
}

}  // namespace wrht
