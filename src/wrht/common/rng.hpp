// Deterministic random number generation.
//
// All stochastic pieces of the library (random-fit RWA, synthetic gradient
// data for the executor, workload jitter) draw from an explicitly seeded
// generator so every simulation run is reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace wrht {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = kDefaultSeed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// Normal deviate.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Vector of n uniform reals in [lo, hi); used as synthetic gradients.
  [[nodiscard]] std::vector<double> uniform_vector(std::size_t n, double lo,
                                                   double hi);

  std::mt19937_64& engine() { return engine_; }

  static constexpr std::uint64_t kDefaultSeed = 0x5eed'2023'0001ull;

 private:
  std::mt19937_64 engine_;
};

}  // namespace wrht
