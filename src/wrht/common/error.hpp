// Error types for the WRHT library.
//
// Invalid configurations (e.g. a group size larger than the ring, or a
// schedule whose RWA needs more wavelengths than the fiber carries) are
// reported with exceptions derived from wrht::Error so callers can
// distinguish library failures from std:: failures.
#pragma once

#include <stdexcept>
#include <string>

namespace wrht {

/// Base class of all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller-supplied parameter is outside its valid domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A communication schedule cannot be realised on the given network
/// (wavelength exhaustion, conflicting lightpaths, unroutable flow, ...).
class InfeasibleSchedule : public Error {
 public:
  explicit InfeasibleSchedule(const std::string& what) : Error(what) {}
};

/// The optical power budget or BER constraint cannot be met.
class ConstraintViolation : public Error {
 public:
  explicit ConstraintViolation(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `message` unless `condition` holds.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

}  // namespace wrht
