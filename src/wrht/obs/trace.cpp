#include "wrht/obs/trace.hpp"

namespace wrht::obs {

// Out-of-line key function anchors the vtable in this translation unit.
TraceSink::~TraceSink() = default;

}  // namespace wrht::obs
