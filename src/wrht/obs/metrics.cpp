#include "wrht/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "wrht/common/csv.hpp"
#include "wrht/common/error.hpp"

namespace wrht::obs {

namespace {

/// %.9g matches RunReport::write_json: enough digits for plotting and
/// deterministic across runs of the same simulation.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(HistogramSpec spec)
    : spec_(spec), inv_log_growth_(1.0 / std::log(spec.growth)) {
  require(spec_.lo > 0.0, "Histogram: lo must be positive");
  require(spec_.growth > 1.0, "Histogram: growth must exceed 1");
  require(spec_.buckets >= 1, "Histogram: need at least one bucket");
  counts_.assign(spec_.buckets, 0);
}

void Histogram::observe(double value) {
  std::size_t bucket = 0;
  if (value >= spec_.lo) {
    // log-ratio bucket index; clamped so overflow lands in the last bucket.
    const double h = std::log(value / spec_.lo) * inv_log_growth_;
    bucket = std::min(static_cast<std::size_t>(h),
                      static_cast<std::size_t>(spec_.buckets - 1));
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

double Histogram::bucket_lo(std::uint32_t i) const {
  require(i < spec_.buckets, "Histogram: bucket index out of range");
  return spec_.lo * std::pow(spec_.growth, static_cast<double>(i));
}

double Histogram::bucket_hi(std::uint32_t i) const {
  require(i < spec_.buckets, "Histogram: bucket index out of range");
  return spec_.lo * std::pow(spec_.growth, static_cast<double>(i) + 1.0);
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram: quantile must be in [0, 1]");
  require(count_ > 0, "Histogram: quantile of an empty histogram");
  // Rank of the q-th observation (1-based, ceiling — the classic
  // "smallest x with CDF(x) >= q").
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < spec_.buckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) return bucket_hi(i);
  }
  return bucket_hi(spec_.buckets - 1);
}

void Histogram::merge(const Histogram& other) {
  require(spec_ == other.spec_,
          "Histogram: merging histograms with different bucket specs");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

TimeSeries::TimeSeries(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "TimeSeries: capacity must be >= 1");
}

void TimeSeries::push(Seconds time, double value) {
  if (size_ == points_.size() && points_.size() < capacity_) {
    // Grow toward the capacity. Until the ring is full head_ stays 0, so
    // appended storage extends the logical sequence in place.
    points_.resize(std::min(capacity_, std::max<std::size_t>(8, 2 * size_)));
  }
  if (size_ < points_.size()) {
    std::size_t slot = head_ + size_;
    if (slot >= points_.size()) slot -= points_.size();
    points_[slot] = TimeSeriesPoint{time, value};
    ++size_;
    return;
  }
  // Full: the oldest sample's slot becomes the newest.
  points_[head_] = TimeSeriesPoint{time, value};
  if (++head_ == points_.size()) head_ = 0;
  ++dropped_;
}

const TimeSeriesPoint& TimeSeries::operator[](std::size_t i) const {
  require(i < size_, "TimeSeries: sample index out of range");
  return points_[(head_ + i) % points_.size()];
}

std::vector<TimeSeriesPoint> TimeSeries::points() const {
  std::vector<TimeSeriesPoint> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
  return out;
}

std::string to_string(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return "counter";
    case InstrumentKind::kGauge:
      return "gauge";
    case InstrumentKind::kHistogram:
      return "histogram";
  }
  throw InvalidArgument("unknown InstrumentKind");
}

MetricsRegistry::MetricsRegistry() : MetricsRegistry(Options{}) {}

MetricsRegistry::MetricsRegistry(Options options) : options_(options) {
  require(options_.series_capacity >= 1,
          "MetricsRegistry: series_capacity must be >= 1");
}

MetricsRegistry::Id MetricsRegistry::intern(const std::string& name,
                                            InstrumentKind kind,
                                            const HistogramSpec* spec) {
  require(!name.empty(), "MetricsRegistry: empty instrument name");
  for (Id id = 0; id < instruments_.size(); ++id) {
    if (instruments_[id].name != name) continue;
    require(instruments_[id].kind == kind,
            "MetricsRegistry: instrument '" + name + "' already registered "
            "as a " + obs::to_string(instruments_[id].kind));
    if (spec != nullptr) {
      require(instruments_[id].hist->spec() == *spec,
              "MetricsRegistry: histogram '" + name +
                  "' re-registered with a different bucket spec");
    }
    return id;
  }
  Instrument inst{name, kind, 0.0, std::nullopt,
                  TimeSeries(options_.series_capacity)};
  if (spec != nullptr) inst.hist.emplace(*spec);
  instruments_.push_back(std::move(inst));
  return static_cast<Id>(instruments_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name) {
  return intern(name, InstrumentKind::kCounter, nullptr);
}

MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name) {
  return intern(name, InstrumentKind::kGauge, nullptr);
}

MetricsRegistry::Id MetricsRegistry::histogram(const std::string& name,
                                               HistogramSpec spec) {
  return intern(name, InstrumentKind::kHistogram, &spec);
}

// The accessors below sit on the FabricService hot path (every event hook
// and every sampler tick). require() builds its message string before
// testing the condition, so happy-path calls would pay a heap allocation
// per check — these spell out the branch and only construct the message
// when actually throwing.
const MetricsRegistry::Instrument& MetricsRegistry::at(Id id) const {
  if (id >= instruments_.size()) {
    throw InvalidArgument("MetricsRegistry: unknown instrument id");
  }
  return instruments_[id];
}

MetricsRegistry::Instrument& MetricsRegistry::at(Id id) {
  if (id >= instruments_.size()) {
    throw InvalidArgument("MetricsRegistry: unknown instrument id");
  }
  return instruments_[id];
}

void MetricsRegistry::add(Id id, double delta) {
  Instrument& inst = at(id);
  if (inst.kind != InstrumentKind::kCounter) {
    throw InvalidArgument("MetricsRegistry: add() on non-counter '" +
                          inst.name + "'");
  }
  if (delta < 0.0) {
    throw InvalidArgument("MetricsRegistry: counter '" + inst.name +
                          "' is monotonic");
  }
  inst.value += delta;
}

void MetricsRegistry::set(Id id, double value) {
  Instrument& inst = at(id);
  if (inst.kind != InstrumentKind::kGauge) {
    throw InvalidArgument("MetricsRegistry: set() on non-gauge '" +
                          inst.name + "'");
  }
  inst.value = value;
}

void MetricsRegistry::observe(Id id, double value) {
  Instrument& inst = at(id);
  if (inst.kind != InstrumentKind::kHistogram) {
    throw InvalidArgument("MetricsRegistry: observe() on non-histogram '" +
                          inst.name + "'");
  }
  inst.hist->observe(value);
}

double MetricsRegistry::value(Id id) const {
  const Instrument& inst = at(id);
  if (inst.kind == InstrumentKind::kHistogram) {
    return static_cast<double>(inst.hist->count());
  }
  return inst.value;
}

const TimeSeries& MetricsRegistry::series(Id id) const { return at(id).series; }

const Histogram& MetricsRegistry::histogram_at(Id id) const {
  const Instrument& inst = at(id);
  require(inst.kind == InstrumentKind::kHistogram,
          "MetricsRegistry: '" + inst.name + "' is not a histogram");
  return *inst.hist;
}

const std::string& MetricsRegistry::name(Id id) const { return at(id).name; }

InstrumentKind MetricsRegistry::kind(Id id) const { return at(id).kind; }

std::optional<MetricsRegistry::Id> MetricsRegistry::find(
    const std::string& name) const {
  for (Id id = 0; id < instruments_.size(); ++id) {
    if (instruments_[id].name == name) return id;
  }
  return std::nullopt;
}

void MetricsRegistry::sample(Seconds now) {
  // Iterates the storage directly: this runs once per cadence tick for
  // every instrument, and the id-checked value() round-trip is measurable
  // at service-simulation rates.
  for (Instrument& inst : instruments_) {
    const double v = inst.kind == InstrumentKind::kHistogram
                         ? static_cast<double>(inst.hist->count())
                         : inst.value;
    inst.series.push(now, v);
  }
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  if (&other == this) return;
  for (Id oid = 0; oid < other.instruments_.size(); ++oid) {
    const Instrument& theirs = other.instruments_[oid];
    const HistogramSpec spec =
        theirs.hist ? theirs.hist->spec() : HistogramSpec{};
    const Id id = intern(theirs.name, theirs.kind,
                         theirs.hist ? &spec : nullptr);
    Instrument& ours = at(id);
    switch (theirs.kind) {
      case InstrumentKind::kCounter:
        ours.value += theirs.value;
        break;
      case InstrumentKind::kGauge:
        ours.value = std::max(ours.value, theirs.value);
        break;
      case InstrumentKind::kHistogram:
        ours.hist->merge(*theirs.hist);
        break;
    }
  }
}

void MetricsRegistry::write_series_csv(const std::string& path) const {
  CsvWriter csv(path, {"metric", "kind", "t_s", "value"});
  // Name order, not registration order: deterministic regardless of which
  // code path registered first.
  std::vector<Id> order(instruments_.size());
  for (Id id = 0; id < instruments_.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [this](Id a, Id b) {
    return instruments_[a].name < instruments_[b].name;
  });
  for (const Id id : order) {
    const Instrument& inst = instruments_[id];
    const std::string kind_name = obs::to_string(inst.kind);
    for (std::size_t i = 0; i < inst.series.size(); ++i) {
      const TimeSeriesPoint& p = inst.series[i];
      csv.add_row({inst.name, kind_name, num(p.time.count()), num(p.value)});
    }
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::vector<Id> order(instruments_.size());
  for (Id id = 0; id < instruments_.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [this](Id a, Id b) {
    return instruments_[a].name < instruments_[b].name;
  });

  out << "{\n  \"schema\": \"wrht-metrics-1\",\n  \"instruments\": [";
  bool first = true;
  for (const Id id : order) {
    const Instrument& inst = instruments_[id];
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << inst.name << "\", \"kind\": \""
        << obs::to_string(inst.kind) << "\", \"value\": " << num(value(id))
        << ", \"samples\": " << inst.series.size()
        << ", \"dropped\": " << inst.series.dropped();
    if (inst.hist) {
      out << ", \"sum\": " << num(inst.hist->sum()) << ", \"buckets\": [";
      // Sparse: only non-empty buckets, as [index, count] pairs.
      bool first_bucket = true;
      const auto& counts = inst.hist->bucket_counts();
      for (std::size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] == 0) continue;
        out << (first_bucket ? "" : ", ") << "[" << b << ", " << counts[b]
            << "]";
        first_bucket = false;
      }
      out << "]";
    }
    out << ", \"series\": [";
    for (std::size_t i = 0; i < inst.series.size(); ++i) {
      const TimeSeriesPoint& p = inst.series[i];
      out << (i == 0 ? "" : ", ") << "[" << num(p.time.count()) << ", "
          << num(p.value) << "]";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("MetricsRegistry: cannot open " + path);
  write_json(out);
}

}  // namespace wrht::obs
