// Typed time-series metrics for long-lived service simulations.
//
// obs::Counters answers "how much happened over the whole run"; a
// multi-tenant service also needs "what did the fabric look like at
// t = 0.3 s" — queue depth, wavelengths in use, fragmentation, SLO burn
// over virtual time, because transient contention (not steady-state
// averages) is what separates admission policies. MetricsRegistry holds
// typed instruments — monotonic counters, gauges, and fixed-bucket
// log-scale histograms with deterministic merge — and sample() snapshots
// every instrument's current value into its own TimeSeries ring buffer at
// whatever virtual-time cadence the caller drives. Exports (CSV long
// format, wrht-metrics-1 JSON) are deterministic: instruments iterate in
// name order, numbers print with fixed precision.
//
// Not thread-safe by design: the registry belongs to one simulation loop
// (svc::FabricService drives it single-threaded). Sweep workers that need
// a shared thread-safe sink record through obs::Counters, which carries
// the same Histogram type behind its mutex (Counters::observe).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "wrht/common/units.hpp"

namespace wrht::obs {

/// Fixed log-scale bucket layout: bucket i covers [lo * growth^i,
/// lo * growth^(i+1)); values below lo land in bucket 0, values at or past
/// the top boundary land in the last bucket. Two histograms merge only
/// when their specs are identical.
struct HistogramSpec {
  double lo = 1e-6;
  double growth = 2.0;
  std::uint32_t buckets = 64;

  friend bool operator==(const HistogramSpec&, const HistogramSpec&) = default;
};

/// Fixed-bucket log-scale histogram. Merge is elementwise count addition,
/// so merging per-run histograms is equivalent to one combined run — the
/// same contract obs::Counters::merge keeps for scalar counters.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec = {});

  void observe(double value);

  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  /// Lower edge of bucket `i` (lo * growth^i).
  [[nodiscard]] double bucket_lo(std::uint32_t i) const;
  /// Upper edge of bucket `i`; the last bucket's edge is its nominal
  /// boundary even though it also absorbs overflow.
  [[nodiscard]] double bucket_hi(std::uint32_t i) const;

  /// The q-quantile (q in [0, 1]) estimated as the upper edge of the
  /// bucket holding the q-th observation — a deterministic upper bound
  /// with relative error bounded by the bucket growth factor. Requires a
  /// non-empty histogram.
  [[nodiscard]] double quantile(double q) const;

  /// Elementwise count/sum addition; throws InvalidArgument on spec
  /// mismatch.
  void merge(const Histogram& other);

 private:
  HistogramSpec spec_;
  double inv_log_growth_ = 1.0;  // cached for observe(); spec_ is fixed
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

struct TimeSeriesPoint {
  Seconds time{0.0};
  double value = 0.0;
};

/// Fixed-capacity ring buffer of (virtual time, value) samples. When full,
/// push() overwrites the oldest sample and counts it in dropped() — a
/// bounded-memory service can run forever and keep the trailing window.
/// Storage grows geometrically up to the capacity instead of being
/// allocated up front: a registry holds one series per instrument, and
/// short runs would otherwise page-fault capacity * 16 bytes per
/// instrument before the first sample.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 4096);

  void push(Seconds time, double value);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// i-th retained sample, oldest first.
  [[nodiscard]] const TimeSeriesPoint& operator[](std::size_t i) const;
  /// Retained samples, oldest first (a copy; the ring stays packed).
  [[nodiscard]] std::vector<TimeSeriesPoint> points() const;

 private:
  std::vector<TimeSeriesPoint> points_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // index of the oldest sample
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string to_string(InstrumentKind kind);

class MetricsRegistry {
 public:
  using Id = std::uint32_t;

  struct Options {
    /// Ring capacity of every instrument's TimeSeries (the sampling
    /// cadence — the series resolution — is the caller's, who drives
    /// sample()).
    std::size_t series_capacity = 4096;
  };

  MetricsRegistry();
  explicit MetricsRegistry(Options options);

  /// Registers (or finds) an instrument. Re-requesting a name with the
  /// same kind returns the existing id; a kind clash throws
  /// InvalidArgument.
  Id counter(const std::string& name);
  Id gauge(const std::string& name);
  Id histogram(const std::string& name, HistogramSpec spec = {});

  /// Monotonic: a negative delta throws.
  void add(Id id, double delta = 1.0);
  /// Gauges move freely in both directions.
  void set(Id id, double value);
  /// Records one observation into a histogram instrument.
  void observe(Id id, double value);

  /// Counter/gauge current value; a histogram reads as its observation
  /// count.
  [[nodiscard]] double value(Id id) const;
  [[nodiscard]] const TimeSeries& series(Id id) const;
  /// The histogram behind a kHistogram instrument; throws on other kinds.
  [[nodiscard]] const Histogram& histogram_at(Id id) const;

  [[nodiscard]] std::size_t size() const { return instruments_.size(); }
  [[nodiscard]] const std::string& name(Id id) const;
  [[nodiscard]] InstrumentKind kind(Id id) const;
  [[nodiscard]] std::optional<Id> find(const std::string& name) const;

  /// Appends every instrument's current value to its TimeSeries, stamped
  /// `now`. The caller owns the cadence; calling on a virtual-time grid
  /// makes the series a fixed-resolution signal.
  void sample(Seconds now);

  /// Folds `other` in by instrument name: counters and histograms sum,
  /// gauges keep the larger value (high-watermark, the only
  /// order-independent fold). Series are not merged — they are per-run
  /// signals. Kind clashes throw.
  void merge(const MetricsRegistry& other);

  /// Long-format CSV: metric,kind,t_s,value — one row per retained sample
  /// of every instrument, instruments in name order.
  void write_series_csv(const std::string& path) const;

  /// Deterministic JSON ("wrht-metrics-1"): every instrument's kind,
  /// current value, histogram buckets, and retained samples.
  void write_json(std::ostream& out) const;
  void write_json_file(const std::string& path) const;

 private:
  struct Instrument {
    std::string name;
    InstrumentKind kind = InstrumentKind::kCounter;
    double value = 0.0;  // counter/gauge current value
    std::optional<Histogram> hist;
    TimeSeries series;
  };

  Id intern(const std::string& name, InstrumentKind kind,
            const HistogramSpec* spec);
  const Instrument& at(Id id) const;
  Instrument& at(Id id);

  Options options_;
  std::vector<Instrument> instruments_;
};

}  // namespace wrht::obs
