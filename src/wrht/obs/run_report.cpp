#include "wrht/obs/run_report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "wrht/common/csv.hpp"
#include "wrht/common/error.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/prof/prof.hpp"

namespace wrht {

namespace {

std::string format_seconds(Seconds s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", s.count());
  return buf;
}

std::string format_fraction(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void write_breakdown_json(std::ostream& out, const TimeBreakdown& b) {
  out << "{\"transmission_s\":" << format_seconds(b.transmission)
      << ",\"reconfiguration_s\":" << format_seconds(b.reconfiguration)
      << ",\"conversion_s\":" << format_seconds(b.conversion)
      << ",\"processing_s\":" << format_seconds(b.processing)
      << ",\"straggler_wait_s\":" << format_seconds(b.straggler_wait)
      << ",\"idle_s\":" << format_seconds(b.idle) << "}";
}

}  // namespace

TimeBreakdown& TimeBreakdown::operator+=(const TimeBreakdown& o) {
  transmission += o.transmission;
  reconfiguration += o.reconfiguration;
  conversion += o.conversion;
  processing += o.processing;
  straggler_wait += o.straggler_wait;
  idle += o.idle;
  return *this;
}

Seconds RunReport::max_step_duration() const {
  Seconds out{0.0};
  for (const auto& s : step_reports) out = std::max(out, s.duration);
  return out;
}

std::uint32_t RunReport::max_wavelengths_used() const {
  std::uint32_t out = 0;
  for (const auto& s : step_reports) {
    out = std::max(out, s.wavelengths_used);
  }
  return out;
}

void RunReport::add_counters(const obs::Counters& from) {
  for (const auto& [name, value] : from.snapshot()) counters[name] += value;
}

void RunReport::write_step_csv(const std::string& path) const {
  CsvWriter csv(path, {"step", "label", "start_s", "duration_s", "rounds",
                       "wavelengths_used"});
  for (std::size_t i = 0; i < step_reports.size(); ++i) {
    const StepReport& s = step_reports[i];
    csv.add_row({std::to_string(i), s.label, format_seconds(s.start),
                 format_seconds(s.duration), std::to_string(s.rounds),
                 std::to_string(s.wavelengths_used)});
  }
}

void RunReport::write_json(std::ostream& out) const {
  const auto esc = &obs::ChromeTraceSink::escape;
  out << "{\n";
  out << "  \"backend\": \"" << esc(backend) << "\",\n";
  out << "  \"total_time_s\": " << format_seconds(total_time) << ",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"rounds\": " << rounds << ",\n";
  out << "  \"events_fired\": " << events_fired << ",\n";
  out << "  \"utilization\": " << format_fraction(utilization) << ",\n";
  out << "  \"resources_observed\": " << resources_observed << ",\n";
  out << "  \"breakdown\": ";
  write_breakdown_json(out, breakdown);
  out << ",\n  \"step_reports\": [";
  for (std::size_t i = 0; i < step_reports.size(); ++i) {
    const StepReport& s = step_reports[i];
    out << (i == 0 ? "" : ",") << "\n    {\"step\":" << i << ",\"label\":\""
        << esc(s.label) << "\",\"start_s\":" << format_seconds(s.start)
        << ",\"duration_s\":" << format_seconds(s.duration)
        << ",\"rounds\":" << s.rounds
        << ",\"wavelengths_used\":" << s.wavelengths_used
        << ",\"breakdown\":";
    write_breakdown_json(out, s.breakdown);
    out << "}";
  }
  out << (step_reports.empty() ? "" : "\n  ") << "],\n";
  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "" : ",") << "\n    \"" << esc(name) << "\": " << value;
    first = false;
  }
  out << (counters.empty() ? "" : "\n  ") << "}\n";
  out << "}\n";
}

void RunReport::write_json_file(const std::string& path) const {
  const prof::ScopedTimer timer("io.run_report.write");
  std::ofstream out(path);
  if (!out) throw Error("RunReport: cannot open '" + path + "'");
  write_json(out);
}

}  // namespace wrht
