#include "wrht/obs/run_report.hpp"

#include <algorithm>
#include <cstdio>

#include "wrht/common/csv.hpp"

namespace wrht {

namespace {

std::string format_seconds(Seconds s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", s.count());
  return buf;
}

}  // namespace

Seconds RunReport::max_step_duration() const {
  Seconds out{0.0};
  for (const auto& s : step_reports) out = std::max(out, s.duration);
  return out;
}

std::uint32_t RunReport::max_wavelengths_used() const {
  std::uint32_t out = 0;
  for (const auto& s : step_reports) {
    out = std::max(out, s.wavelengths_used);
  }
  return out;
}

void RunReport::add_counters(const obs::Counters& from) {
  for (const auto& [name, value] : from.snapshot()) counters[name] += value;
}

void RunReport::write_step_csv(const std::string& path) const {
  CsvWriter csv(path, {"step", "label", "start_s", "duration_s", "rounds",
                       "wavelengths_used"});
  for (std::size_t i = 0; i < step_reports.size(); ++i) {
    const StepReport& s = step_reports[i];
    csv.add_row({std::to_string(i), s.label, format_seconds(s.start),
                 format_seconds(s.duration), std::to_string(s.rounds),
                 std::to_string(s.wavelengths_used)});
  }
}

}  // namespace wrht
