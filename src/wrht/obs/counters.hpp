// Named counter registry for simulator telemetry.
//
// Every instrumented layer (event kernel, optical ring, electrical fat
// tree, packet model, data-level executor) accumulates into one Counters
// instance handed in through obs::Probe: wavelengths used per round,
// rounds per step, reconfiguration charges under either accounting mode,
// multi-round splits, fair-share bottleneck links, events fired. Counters
// are ordered (std::map) so snapshots and CSV dumps are deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace wrht::obs {

class Counters {
 public:
  /// Adds `delta` to `name`, creating the counter at zero first.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Raises `name` to `value` if `value` is larger (high-watermark style,
  /// e.g. the peak wavelength count or link load across a run).
  void observe_max(const std::string& name, std::uint64_t value);

  /// Current value; absent counters read as zero.
  [[nodiscard]] std::uint64_t value(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Name-ordered view of every counter.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& snapshot() const {
    return values_;
  }

  /// Adds every counter of `other` into this registry.
  void merge(const Counters& other);

  void clear() { values_.clear(); }

  /// Writes `counter,value` rows (header included) to `path`.
  void write_csv(const std::string& path) const;

 private:
  std::map<std::string, std::uint64_t> values_;
};

}  // namespace wrht::obs
