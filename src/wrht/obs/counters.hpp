// Named counter registry for simulator telemetry.
//
// Every instrumented layer (event kernel, optical ring, electrical fat
// tree, packet model, data-level executor) accumulates into one Counters
// instance handed in through obs::Probe: wavelengths used per round,
// rounds per step, reconfiguration charges under either accounting mode,
// multi-round splits, fair-share bottleneck links, events fired. Counters
// are ordered (std::map) so snapshots and CSV dumps are deterministic.
//
// Thread-safe: every method takes an internal mutex, so concurrent
// simulator runs (exp::SweepRunner workers, the process-wide
// bench::metrics() registry) may share one instance. Each counter
// remembers whether it accumulates (add) or high-watermarks
// (observe_max), and merge() honours that: additive counters sum,
// watermark counters take the max — merging per-run registries is
// equivalent to having observed one combined run.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace wrht::obs {

class Counters {
 public:
  Counters() = default;
  Counters(const Counters&) = delete;
  Counters& operator=(const Counters&) = delete;

  /// Adds `delta` to `name`, creating the counter at zero first.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Raises `name` to `value` if `value` is larger (high-watermark style,
  /// e.g. the peak wavelength count or link load across a run).
  void observe_max(const std::string& name, std::uint64_t value);

  /// Current value; absent counters read as zero.
  [[nodiscard]] std::uint64_t value(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const;

  /// Name-ordered copy of every counter (a copy, so iteration needs no
  /// lock against concurrent writers).
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;

  /// Folds `other` into this registry: additive counters sum, watermark
  /// counters take the max.
  void merge(const Counters& other);

  void clear();

  /// Writes `counter,value` rows (header included) to `path`.
  void write_csv(const std::string& path) const;

 private:
  enum class Kind : std::uint8_t { kAdd, kMax };
  struct Entry {
    std::uint64_t value = 0;
    Kind kind = Kind::kAdd;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> values_;
};

}  // namespace wrht::obs
