// Named counter registry for simulator telemetry.
//
// Every instrumented layer (event kernel, optical ring, electrical fat
// tree, packet model, data-level executor) accumulates into one Counters
// instance handed in through obs::Probe: wavelengths used per round,
// rounds per step, reconfiguration charges under either accounting mode,
// multi-round splits, fair-share bottleneck links, events fired. Counters
// are ordered (std::map) so snapshots and CSV dumps are deterministic.
//
// Thread-safe: every method takes an internal mutex, so concurrent
// simulator runs (exp::SweepRunner workers, the process-wide
// bench::metrics() registry) may share one instance. Each counter
// remembers whether it accumulates (add), high-watermarks
// (observe_max), or holds a distribution (observe), and merge() honours
// that: additive counters sum, watermark counters take the max,
// histogram counts add elementwise — merging per-run registries is
// equivalent to having observed one combined run.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "wrht/obs/metrics.hpp"

namespace wrht::obs {

class Counters {
 public:
  Counters() = default;
  Counters(const Counters&) = delete;
  Counters& operator=(const Counters&) = delete;

  /// Adds `delta` to `name`, creating the counter at zero first.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Raises `name` to `value` if `value` is larger (high-watermark style,
  /// e.g. the peak wavelength count or link load across a run).
  void observe_max(const std::string& name, std::uint64_t value);

  /// Records one observation into the histogram behind `name`, creating
  /// it with `spec` on first use. Sweep workers use this for latency
  /// distributions; the spec must match on every call (and across merged
  /// registries) or the call throws InvalidArgument.
  void observe(const std::string& name, double value, HistogramSpec spec = {});

  /// Current value; absent counters read as zero, histogram entries read
  /// as their observation count.
  [[nodiscard]] std::uint64_t value(const std::string& name) const;

  /// Copy of the distribution behind a histogram entry, or nullopt for
  /// absent / non-histogram names.
  [[nodiscard]] std::optional<Histogram> distribution(
      const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const;

  /// Name-ordered copy of every counter (a copy, so iteration needs no
  /// lock against concurrent writers).
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;

  /// Folds `other` into this registry: additive counters sum, watermark
  /// counters take the max, histograms merge elementwise (specs must
  /// match).
  void merge(const Counters& other);

  void clear();

  /// Writes `counter,value` rows (header included) to `path`; histogram
  /// entries report their observation count.
  void write_csv(const std::string& path) const;

 private:
  enum class Kind : std::uint8_t { kAdd, kMax, kHist };
  struct Entry {
    std::uint64_t value = 0;
    Kind kind = Kind::kAdd;
    std::optional<Histogram> hist;  // engaged iff kind == kHist
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> values_;
};

}  // namespace wrht::obs
