// Transfer-level timeline sink for causal blame attribution (wrht::diag).
//
// Where OccupancySampler answers "how busy was each resource", TransferLog
// keeps the *causal structure* of a run: every step, every serialization
// round inside it, and every transfer inside each round, with the exact
// cost decomposition the engine charged (reconfiguration / O-E-O
// conversion / serialization) and a retune flag replicating kOnRetune
// accounting regardless of the policy the run actually used. wrht::diag
// rebuilds the dependency DAG from these records, extracts the critical
// path, and proves the blame accounting identity against the simulated
// makespan.
//
// Like every Probe member the sink is null by default; engines guard all
// emission behind one pointer test, so unobserved runs cost nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wrht/common/units.hpp"

namespace wrht::obs {

/// One schedule step on the run timeline.
struct StepTrace {
  std::uint32_t step = 0;
  std::string label;
  Seconds start{0.0};
  Seconds duration{0.0};
};

/// One serialization round on one lane. A lane is an independently
/// progressing resource chain within a step: the double ring has one lane
/// ("ring"), the torus one per participating ring ("row3", "col0"), the
/// electrical engines a single "fabric" lane. A step's duration is the max
/// over its lanes of the lane's round-duration sum — the blame DAG's only
/// join rule.
struct RoundTrace {
  std::uint32_t step = 0;
  std::string lane;
  std::uint32_t round = 0;
  Seconds start{0.0};
  /// Reconfiguration delay actually charged to this round under the run's
  /// policy (the kOverlapped residual, zero for free kOnRetune rounds).
  Seconds reconfig{0.0};
  /// Full (unhidden) reconfiguration delay, for what-if re-pricing.
  Seconds full_reconfig{0.0};
  Seconds conversion{0.0};     ///< O/E/O conversion time
  Seconds serialization{0.0};  ///< slowest transfer's payload time
  /// Router store-and-forward processing on the bounding flow (electrical
  /// engines; zero on the optical ones).
  Seconds processing{0.0};
  /// reconfig + conversion + serialization + processing
  Seconds duration{0.0};
  /// Whether kOnRetune accounting would charge this round (some micro-ring
  /// changes state relative to the previous round on this lane's walk).
  /// Engines that cannot keep circuits up across rounds report true.
  bool retune = true;
};

/// One transfer inside a round, with its routing assignment.
struct TransferTrace {
  std::uint32_t step = 0;
  std::string lane;
  std::uint32_t round = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t elements = 0;
  std::uint32_t wavelength = 0;
  std::uint8_t direction = 0;  ///< engine-specific (ring: 0 cw, 1 ccw)
  Seconds start{0.0};
  Seconds duration{0.0};
};

/// Collects the transfer-level timeline of one engine execution. Plain
/// struct-of-vectors: engines append in time order per lane, wrht::diag
/// consumes by value.
class TransferLog {
 public:
  /// Run provenance, stamped by the engine at execute() time so blame
  /// reports are self-describing.
  struct Context {
    std::string backend;          ///< "optical-ring", "electrical-flow", ...
    std::string reconfig_policy;  ///< net::to_string(policy)
    Seconds mrr_reconfig_delay{0.0};
    Seconds oeo_delay{0.0};
  };

  void set_context(Context context) { context_ = std::move(context); }
  [[nodiscard]] const Context& context() const { return context_; }

  void step(StepTrace s) { steps_.push_back(std::move(s)); }
  void round(RoundTrace r) { rounds_.push_back(std::move(r)); }
  void transfer(TransferTrace t) { transfers_.push_back(std::move(t)); }

  [[nodiscard]] const std::vector<StepTrace>& steps() const { return steps_; }
  [[nodiscard]] const std::vector<RoundTrace>& rounds() const {
    return rounds_;
  }
  [[nodiscard]] const std::vector<TransferTrace>& transfers() const {
    return transfers_;
  }

  [[nodiscard]] bool empty() const {
    return steps_.empty() && rounds_.empty() && transfers_.empty();
  }

  void clear() {
    steps_.clear();
    rounds_.clear();
    transfers_.clear();
  }

 private:
  Context context_;
  std::vector<StepTrace> steps_;
  std::vector<RoundTrace> rounds_;
  std::vector<TransferTrace> transfers_;
};

}  // namespace wrht::obs
