// Chrome trace-event JSON exporter.
//
// ChromeTraceSink accumulates spans and counter samples and serializes
// them in the Trace Event Format that chrome://tracing and Perfetto's
// legacy importer load directly: spans as "X" complete events, counter
// samples as "C" counter events (Perfetto renders those as numeric tracks
// under the same process), flow arrows as "s"/"f" flow-event pairs that
// the viewer draws between the spans they bind to. Field order inside
// every event object is fixed (name, cat, ph, ts, dur, pid, tid, args) and
// events are emitted in arrival order — all spans first, then counter
// samples, then flow pairs — so output is byte-stable for a deterministic
// run; the golden test relies on that.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "wrht/obs/trace.hpp"

namespace wrht::obs {

/// One causal arrow between two points on the trace, rendered by the
/// viewer as a flow line from the span enclosing (start, start_track) to
/// the span enclosing (finish, finish_track). The ids are assigned at
/// add_flow() time, so callers only describe the endpoints.
struct FlowArrow {
  std::string name;      ///< flow label, e.g. "critical path"
  std::string category;  ///< "blame", "grant", ...
  Seconds start{0.0};
  std::uint32_t start_track = 0;
  Seconds finish{0.0};
  std::uint32_t finish_track = 0;
};

class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::string process_name = "wrht");

  void span(const TraceSpan& s) override;
  void counter(const CounterSample& s) override;
  // Rvalue overloads so per-event callers (the FabricService telemetry
  // hooks construct a temporary per sample) move their strings in instead
  // of re-allocating them.
  void span(TraceSpan&& s) { spans_.push_back(std::move(s)); }
  void counter(CounterSample&& s) { counters_.push_back(std::move(s)); }

  /// Pre-sizes the span/counter storage; a service that knows its job
  /// count can avoid mid-run reallocation.
  void reserve(std::size_t spans, std::size_t counters) {
    spans_.reserve(spans);
    counters_.reserve(counters);
  }

  /// Labels `track` in the viewer (emitted as thread_name metadata).
  void set_track_name(std::uint32_t track, const std::string& name);

  /// Records a causal arrow; serialized as an "s"/"f" flow-event pair with
  /// a shared id in insertion order.
  void add_flow(FlowArrow arrow) { flows_.push_back(std::move(arrow)); }

  [[nodiscard]] std::size_t size() const { return spans_.size(); }
  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

  /// Serializes the whole trace; `ts`/`dur` are microseconds with fixed
  /// 6-digit precision.
  void write(std::ostream& out) const;

  /// write() to `path`; throws wrht::Error if the file cannot be opened.
  void write_file(const std::string& path) const;

  /// Escapes a string for embedding inside a JSON string literal.
  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  std::string process_name_;
  std::vector<TraceSpan> spans_;
  std::vector<CounterSample> counters_;
  std::vector<FlowArrow> flows_;
  std::map<std::uint32_t, std::string> track_names_;
};

}  // namespace wrht::obs
