// Unified run report across all schedule-executing backends.
//
// OpticalRunResult, ElectricalRunResult and PacketRunResult each carry
// backend-specific fields in backend-specific shapes; benches used to
// re-convert them by hand. RunReport is the common currency: every result
// type converts with a single to_report(), so tables, CSVs and aggregate
// statistics are written once against one shape.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "wrht/common/units.hpp"
#include "wrht/obs/counters.hpp"

namespace wrht {

/// Where the wall clock went, averaged over the resources a run was
/// observed on. The five accounted categories mirror obs::OccCategory;
/// `idle` is the unaccounted complement, so the six fields sum to the
/// interval the breakdown describes (a step's duration, or total_time).
/// All-zero when the run was executed without utilization collection.
struct TimeBreakdown {
  Seconds transmission{0.0};
  Seconds reconfiguration{0.0};
  Seconds conversion{0.0};
  Seconds processing{0.0};
  Seconds straggler_wait{0.0};
  Seconds idle{0.0};

  [[nodiscard]] Seconds accounted() const {
    return transmission + reconfiguration + conversion + processing +
           straggler_wait;
  }
  [[nodiscard]] Seconds total() const { return accounted() + idle; }

  TimeBreakdown& operator+=(const TimeBreakdown& o);
};

/// One communication step as priced by some backend. Fields a backend
/// cannot know stay at their defaults (electrical steps have one "round"
/// and no wavelengths).
struct StepReport {
  std::string label;
  Seconds start{0.0};
  Seconds duration{0.0};
  std::uint32_t rounds = 1;
  std::uint32_t wavelengths_used = 0;
  /// Per-step time attribution; all-zero unless utilization was collected.
  TimeBreakdown breakdown;
};

struct RunReport {
  /// "optical-ring", "electrical-flow" or "electrical-packet".
  std::string backend;
  Seconds total_time{0.0};
  std::size_t steps = 0;
  std::uint64_t rounds = 0;
  std::uint64_t events_fired = 0;
  std::vector<StepReport> step_reports;
  /// Counter snapshot attached via add_counters(); empty when the run was
  /// not observed.
  std::map<std::string, std::uint64_t> counters;
  /// Run-level time attribution across total_time (obs::attach_utilization
  /// fills this); all-zero unless utilization was collected.
  TimeBreakdown breakdown;
  /// Mean fraction of total_time the observed resources spent transmitting
  /// payload, in [0, 1]. Zero unless utilization was collected.
  double utilization = 0.0;
  /// Number of distinct resources the occupancy sampler saw (wavelength ×
  /// direction pairs, links). Zero unless utilization was collected.
  std::size_t resources_observed = 0;

  [[nodiscard]] Seconds max_step_duration() const;
  [[nodiscard]] std::uint32_t max_wavelengths_used() const;
  /// Merges a counter registry's snapshot into `counters`.
  void add_counters(const obs::Counters& from);
  /// Writes one row per step: step,label,start_s,duration_s,rounds,
  /// wavelengths_used.
  void write_step_csv(const std::string& path) const;
  /// Serializes the full report — run fields, breakdown, every step with
  /// its breakdown, and the counters map — as deterministic JSON (keys in
  /// fixed order, %.9g seconds). Unlike write_step_csv this loses nothing.
  void write_json(std::ostream& out) const;
  /// write_json() to `path`; throws wrht::Error if the file cannot open.
  void write_json_file(const std::string& path) const;
};

}  // namespace wrht
