// Unified run report across all schedule-executing backends.
//
// OpticalRunResult, ElectricalRunResult and PacketRunResult each carry
// backend-specific fields in backend-specific shapes; benches used to
// re-convert them by hand. RunReport is the common currency: every result
// type converts with a single to_report(), so tables, CSVs and aggregate
// statistics are written once against one shape.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "wrht/common/units.hpp"
#include "wrht/obs/counters.hpp"

namespace wrht {

/// One communication step as priced by some backend. Fields a backend
/// cannot know stay at their defaults (electrical steps have one "round"
/// and no wavelengths).
struct StepReport {
  std::string label;
  Seconds start{0.0};
  Seconds duration{0.0};
  std::uint32_t rounds = 1;
  std::uint32_t wavelengths_used = 0;
};

struct RunReport {
  /// "optical-ring", "electrical-flow" or "electrical-packet".
  std::string backend;
  Seconds total_time{0.0};
  std::size_t steps = 0;
  std::uint64_t rounds = 0;
  std::uint64_t events_fired = 0;
  std::vector<StepReport> step_reports;
  /// Counter snapshot attached via add_counters(); empty when the run was
  /// not observed.
  std::map<std::string, std::uint64_t> counters;

  [[nodiscard]] Seconds max_step_duration() const;
  [[nodiscard]] std::uint32_t max_wavelengths_used() const;
  /// Merges a counter registry's snapshot into `counters`.
  void add_counters(const obs::Counters& from);
  /// Writes one row per step: step,label,start_s,duration_s,rounds,
  /// wavelengths_used.
  void write_step_csv(const std::string& path) const;
};

}  // namespace wrht
