// Utilization analysis on top of occupancy samples.
//
// The occupancy sampler (obs/occupancy.hpp) is a raw interval log; this
// layer turns it into the numbers the paper's efficiency argument is made
// of: per-resource and run-level utilization (fraction of wall clock spent
// transmitting payload), an idle-time breakdown attributing the rest to
// MRR reconfiguration / O/E/O conversion / router processing / straggler
// wait / idle, and the critical path through the step timeline — for each
// step, the resource whose accounted time bounds it, so the chain's length
// equals RunReport::total_time by construction and its slack-free fraction
// says how much of the bound is payload rather than overhead.
//
// Accounting identity (relied on by the acceptance tests): per step, the
// averaged-over-resources category times plus the derived idle complement
// sum to the step duration; summed over steps they equal total_time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "wrht/common/units.hpp"
#include "wrht/obs/occupancy.hpp"
#include "wrht/obs/run_report.hpp"

namespace wrht::obs {

/// One resource's account over the whole run. `breakdown.total()` equals
/// the run's total_time (idle is the derived complement).
struct ResourceUtilization {
  std::string name;
  TimeBreakdown breakdown;
  /// transmission / total_time, in [0, 1].
  double utilization = 0.0;
};

/// One step on the critical path: the resource whose accounted time is the
/// largest within the step, i.e. the one that bounds it.
struct CriticalPathEntry {
  std::uint32_t step = 0;
  std::string label;
  std::string resource;     ///< "(unobserved)" if no resource was sampled
  Seconds duration{0.0};    ///< the step's duration (path edges tile the run)
  Seconds transmission{0.0};  ///< slack-free (payload) part of the edge
};

struct UtilizationAnalysis {
  /// Run-level attribution, averaged over resources; total() == total_time.
  TimeBreakdown breakdown;
  /// Mean fraction of total_time the resources spent transmitting.
  double utilization = 0.0;
  /// Per-step attribution, parallel to RunReport::step_reports.
  std::vector<TimeBreakdown> step_breakdowns;
  /// Per-resource accounts, in sampler registration order.
  std::vector<ResourceUtilization> resources;
  /// Bounding resource chain, one entry per step.
  std::vector<CriticalPathEntry> critical_path;
  /// Sum of critical-path edge durations; equals total_time.
  Seconds critical_path_length{0.0};
  /// Fraction of the critical path that is payload transmission.
  double slack_free_fraction = 0.0;
};

/// Computes the full analysis for a run. `report` supplies the step
/// timeline and total_time; `sampler` the occupancy intervals recorded
/// while that same run executed.
[[nodiscard]] UtilizationAnalysis analyze_utilization(
    const RunReport& report, const OccupancySampler& sampler);

/// Runs analyze_utilization and folds the results into `report`: run and
/// per-step breakdowns, `utilization`, `resources_observed`. Returns the
/// analysis for callers that also want resources / critical path.
UtilizationAnalysis attach_utilization(RunReport& report,
                                       const OccupancySampler& sampler);

/// The `k` resources with the most idle time, most idle first.
[[nodiscard]] std::vector<ResourceUtilization> top_idle(
    const UtilizationAnalysis& analysis, std::size_t k);

/// Human-readable bottleneck report: totals, breakdown table, critical
/// path, and the top-`k` idle resources.
void print_bottleneck_report(std::ostream& out, const RunReport& report,
                             const UtilizationAnalysis& analysis,
                             std::size_t k = 5);

}  // namespace wrht::obs
