#include "wrht/obs/analysis.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>

#include "wrht/prof/prof.hpp"

namespace wrht::obs {

namespace {

using CategoryTimes = std::array<double, kOccCategoryCount>;

double clamp_nonneg(double v) { return v < 0.0 ? 0.0 : v; }

TimeBreakdown from_categories(const CategoryTimes& t, double interval) {
  TimeBreakdown b;
  b.transmission = Seconds(t[static_cast<std::size_t>(OccCategory::kTransmission)]);
  b.reconfiguration =
      Seconds(t[static_cast<std::size_t>(OccCategory::kReconfiguration)]);
  b.conversion = Seconds(t[static_cast<std::size_t>(OccCategory::kConversion)]);
  b.processing = Seconds(t[static_cast<std::size_t>(OccCategory::kProcessing)]);
  b.straggler_wait =
      Seconds(t[static_cast<std::size_t>(OccCategory::kStragglerWait)]);
  b.idle = Seconds(clamp_nonneg(interval - b.accounted().count()));
  return b;
}

std::string format_s(Seconds s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6e", s.count());
  return buf;
}

std::string format_pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%5.1f %%", fraction * 100.0);
  return buf;
}

}  // namespace

UtilizationAnalysis analyze_utilization(const RunReport& report,
                                        const OccupancySampler& sampler) {
  const prof::ScopedTimer timer("obs.analyze_utilization");
  UtilizationAnalysis out;
  const std::size_t num_steps = report.step_reports.size();
  const std::size_t num_res = sampler.num_resources();

  // acc[step * num_res + resource][category] = accounted seconds.
  std::vector<CategoryTimes> acc(num_steps * num_res, CategoryTimes{});
  for (std::size_t r = 0; r < num_res; ++r) {
    for (const OccInterval& i : sampler.intervals(static_cast<std::uint32_t>(r))) {
      if (i.step >= num_steps) continue;
      acc[i.step * num_res + r][static_cast<std::size_t>(i.category)] +=
          i.duration.count();
    }
  }

  out.step_breakdowns.reserve(num_steps);
  out.critical_path.reserve(num_steps);
  double slack_free = 0.0;
  for (std::size_t s = 0; s < num_steps; ++s) {
    const StepReport& step = report.step_reports[s];

    // Mean over all observed resources; idle is the complement, so the
    // breakdown totals the step duration exactly.
    CategoryTimes mean{};
    std::size_t critical = num_res;  // sentinel: nothing observed
    double critical_accounted = -1.0;
    for (std::size_t r = 0; r < num_res; ++r) {
      const CategoryTimes& t = acc[s * num_res + r];
      double accounted = 0.0;
      for (std::size_t c = 0; c < kOccCategoryCount; ++c) {
        mean[c] += t[c];
        accounted += t[c];
      }
      if (accounted > critical_accounted) {
        critical_accounted = accounted;
        critical = r;
      }
    }
    if (num_res > 0) {
      for (double& c : mean) c /= static_cast<double>(num_res);
    }
    out.step_breakdowns.push_back(from_categories(mean, step.duration.count()));

    CriticalPathEntry edge;
    edge.step = static_cast<std::uint32_t>(s);
    edge.label = step.label;
    edge.duration = step.duration;
    if (critical < num_res) {
      edge.resource = sampler.name(static_cast<std::uint32_t>(critical));
      edge.transmission = Seconds(
          acc[s * num_res + critical]
             [static_cast<std::size_t>(OccCategory::kTransmission)]);
    } else {
      edge.resource = "(unobserved)";
    }
    slack_free += edge.transmission.count();
    out.critical_path_length += edge.duration;
    out.critical_path.push_back(std::move(edge));
  }

  for (const TimeBreakdown& b : out.step_breakdowns) out.breakdown += b;
  if (report.total_time.count() > 0.0) {
    out.utilization = out.breakdown.transmission.count() /
                      report.total_time.count();
  }
  if (out.critical_path_length.count() > 0.0) {
    out.slack_free_fraction = slack_free / out.critical_path_length.count();
  }

  out.resources.reserve(num_res);
  for (std::size_t r = 0; r < num_res; ++r) {
    ResourceUtilization u;
    const auto ref = static_cast<std::uint32_t>(r);
    u.name = sampler.name(ref);
    CategoryTimes t{};
    for (const OccInterval& i : sampler.intervals(ref)) {
      t[static_cast<std::size_t>(i.category)] += i.duration.count();
    }
    u.breakdown = from_categories(t, report.total_time.count());
    if (report.total_time.count() > 0.0) {
      u.utilization = u.breakdown.transmission.count() /
                      report.total_time.count();
    }
    out.resources.push_back(std::move(u));
  }

  return out;
}

UtilizationAnalysis attach_utilization(RunReport& report,
                                       const OccupancySampler& sampler) {
  UtilizationAnalysis analysis = analyze_utilization(report, sampler);
  report.breakdown = analysis.breakdown;
  report.utilization = analysis.utilization;
  report.resources_observed = sampler.num_resources();
  for (std::size_t s = 0;
       s < report.step_reports.size() && s < analysis.step_breakdowns.size();
       ++s) {
    report.step_reports[s].breakdown = analysis.step_breakdowns[s];
  }
  return analysis;
}

std::vector<ResourceUtilization> top_idle(const UtilizationAnalysis& analysis,
                                          std::size_t k) {
  std::vector<ResourceUtilization> out = analysis.resources;
  std::stable_sort(out.begin(), out.end(),
                   [](const ResourceUtilization& a,
                      const ResourceUtilization& b) {
                     return a.breakdown.idle.count() > b.breakdown.idle.count();
                   });
  if (out.size() > k) out.resize(k);
  return out;
}

void print_bottleneck_report(std::ostream& out, const RunReport& report,
                             const UtilizationAnalysis& analysis,
                             std::size_t k) {
  out << "== bottleneck report: " << report.backend << " ==\n";
  out << "total time         : " << format_s(report.total_time) << " s over "
      << report.steps << " step(s), " << report.rounds << " round(s)\n";
  out << "resources observed : " << analysis.resources.size() << "\n";
  out << "mean utilization   : " << format_pct(analysis.utilization)
      << " of resource-time transmitting\n\n";

  const double total = report.total_time.count();
  const auto share = [&](Seconds s) {
    return total > 0.0 ? s.count() / total : 0.0;
  };
  out << "time breakdown (mean over resources):\n";
  const std::pair<const char*, Seconds> rows[] = {
      {"transmission", analysis.breakdown.transmission},
      {"reconfiguration", analysis.breakdown.reconfiguration},
      {"conversion", analysis.breakdown.conversion},
      {"processing", analysis.breakdown.processing},
      {"straggler-wait", analysis.breakdown.straggler_wait},
      {"idle", analysis.breakdown.idle},
  };
  for (const auto& [name, secs] : rows) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-16s %s s  %s\n", name,
                  format_s(secs).c_str(), format_pct(share(secs)).c_str());
    out << line;
  }
  out << "  total accounted+idle = " << format_s(analysis.breakdown.total())
      << " s\n\n";

  out << "critical path (length " << format_s(analysis.critical_path_length)
      << " s, slack-free " << format_pct(analysis.slack_free_fraction)
      << "):\n";
  for (const CriticalPathEntry& e : analysis.critical_path) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  step %-3u %-24s via %-20s %s s (payload %s s)\n", e.step,
                  e.label.c_str(), e.resource.c_str(),
                  format_s(e.duration).c_str(),
                  format_s(e.transmission).c_str());
    out << line;
  }

  out << "\ntop idle resources:\n";
  const std::vector<ResourceUtilization> idle = top_idle(analysis, k);
  for (std::size_t i = 0; i < idle.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %2zu. %-20s idle %s s  %s of run\n",
                  i + 1, idle[i].name.c_str(),
                  format_s(idle[i].breakdown.idle).c_str(),
                  format_pct(share(idle[i].breakdown.idle)).c_str());
    out << line;
  }
  if (idle.empty()) out << "  (no resources observed)\n";
}

}  // namespace wrht::obs
