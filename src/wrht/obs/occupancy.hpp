// Resource-level occupancy sampling underneath the trace spans.
//
// Spans (PR 1) say *that* a step is slow; occupancy says *which resource
// sat idle and why*. Every timing-producing engine records, per named
// resource — a (direction, wavelength) pair on the optical rings, a
// directed link on the electrical fat tree — the intervals during which
// that resource was reconfiguring (MRR retune), converting (O/E/O),
// processing (router store-and-forward), transmitting payload, or waiting
// on a straggler. Anything not recorded is idle by definition; the
// analysis layer (obs/analysis.hpp) derives it against the run's wall
// clock, so recorded categories + idle always account for 100% of each
// resource's time.
//
// The sampler is attached through obs::Probe::occupancy and is null by
// default: every instrumentation site is guarded by one pointer test, so
// unobserved runs pay nothing (same contract as TraceSink/Counters). It is
// NOT thread-safe — each run carries its own sampler, mirroring the
// one-backend-per-worker rule of exp::SweepRunner.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "wrht/common/units.hpp"

namespace wrht::obs {

/// What a resource spent an interval of wall-clock time on. Idle time is
/// not recorded — it is derived by the analysis layer as the complement.
enum class OccCategory : std::uint8_t {
  kTransmission = 0,   ///< payload serializing on the resource
  kReconfiguration,    ///< MRR retune before a round
  kConversion,         ///< O/E/O conversion
  kProcessing,         ///< router store-and-forward processing
  kStragglerWait,      ///< done, waiting for the slowest peer of the step
};
inline constexpr std::size_t kOccCategoryCount = 5;

/// Stable display name ("transmission", "reconfiguration", ...).
[[nodiscard]] const char* to_string(OccCategory category);

/// One occupancy interval on one resource's timeline.
struct OccInterval {
  Seconds start{0.0};
  Seconds duration{0.0};
  OccCategory category = OccCategory::kTransmission;
  /// Index of the schedule step this interval belongs to.
  std::uint32_t step = 0;
  /// Spatial multiplicity: lightpaths reusing the wavelength on disjoint
  /// ring segments, or flows sharing a link, during this interval.
  std::uint32_t concurrency = 1;
};

class OccupancySampler {
 public:
  /// Dense handle engines cache across steps to avoid per-step lookups.
  using ResourceRef = std::uint32_t;

  /// Finds or registers the resource named `name`.
  [[nodiscard]] ResourceRef resource(const std::string& name);

  /// Appends an interval to `ref`'s timeline. Zero/negative durations are
  /// dropped; an interval that starts exactly where the previous one of the
  /// same step/category/concurrency ended is coalesced into it (the packet
  /// model emits per-packet slices that are usually back to back).
  void record(ResourceRef ref, std::uint32_t step, Seconds start,
              Seconds duration, OccCategory category,
              std::uint32_t concurrency = 1);

  [[nodiscard]] std::size_t num_resources() const { return names_.size(); }
  [[nodiscard]] const std::string& name(ResourceRef ref) const;
  [[nodiscard]] const std::vector<OccInterval>& intervals(
      ResourceRef ref) const;

  /// Sum of `ref`'s recorded time in `category`.
  [[nodiscard]] Seconds recorded(ResourceRef ref, OccCategory category) const;
  /// Sum of `ref`'s recorded time across every category.
  [[nodiscard]] Seconds recorded(ResourceRef ref) const;

  void clear();

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<OccInterval>> intervals_;
  std::unordered_map<std::string, ResourceRef> index_;
};

}  // namespace wrht::obs
