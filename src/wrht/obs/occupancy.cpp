#include "wrht/obs/occupancy.hpp"

#include "wrht/common/error.hpp"

namespace wrht::obs {

const char* to_string(OccCategory category) {
  switch (category) {
    case OccCategory::kTransmission: return "transmission";
    case OccCategory::kReconfiguration: return "reconfiguration";
    case OccCategory::kConversion: return "conversion";
    case OccCategory::kProcessing: return "processing";
    case OccCategory::kStragglerWait: return "straggler-wait";
  }
  return "unknown";
}

OccupancySampler::ResourceRef OccupancySampler::resource(
    const std::string& name) {
  if (const auto it = index_.find(name); it != index_.end()) {
    return it->second;
  }
  const ResourceRef ref = static_cast<ResourceRef>(names_.size());
  names_.push_back(name);
  intervals_.emplace_back();
  index_.emplace(name, ref);
  return ref;
}

void OccupancySampler::record(ResourceRef ref, std::uint32_t step,
                              Seconds start, Seconds duration,
                              OccCategory category,
                              std::uint32_t concurrency) {
  require(ref < intervals_.size(), "OccupancySampler: unknown resource ref");
  if (duration.count() <= 0.0) return;
  std::vector<OccInterval>& timeline = intervals_[ref];
  if (!timeline.empty()) {
    OccInterval& last = timeline.back();
    const double last_end = last.start.count() + last.duration.count();
    // Coalesce back-to-back slices of the same kind (tolerance scaled to
    // the magnitude so femtosecond-scale runs still merge).
    const double eps = 1e-12 * (1.0 + last_end);
    if (last.step == step && last.category == category &&
        last.concurrency == concurrency &&
        start.count() >= last_end - eps && start.count() <= last_end + eps) {
      last.duration += duration;
      return;
    }
  }
  timeline.push_back(OccInterval{start, duration, category, step, concurrency});
}

const std::string& OccupancySampler::name(ResourceRef ref) const {
  require(ref < names_.size(), "OccupancySampler: unknown resource ref");
  return names_[ref];
}

const std::vector<OccInterval>& OccupancySampler::intervals(
    ResourceRef ref) const {
  require(ref < intervals_.size(), "OccupancySampler: unknown resource ref");
  return intervals_[ref];
}

Seconds OccupancySampler::recorded(ResourceRef ref,
                                   OccCategory category) const {
  Seconds total(0.0);
  for (const OccInterval& i : intervals(ref)) {
    if (i.category == category) total += i.duration;
  }
  return total;
}

Seconds OccupancySampler::recorded(ResourceRef ref) const {
  Seconds total(0.0);
  for (const OccInterval& i : intervals(ref)) total += i.duration;
  return total;
}

void OccupancySampler::clear() {
  names_.clear();
  intervals_.clear();
  index_.clear();
}

}  // namespace wrht::obs
