#include "wrht/obs/event_log.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "wrht/common/error.hpp"

namespace wrht::obs {

namespace {

/// Round-trip precision: %.17g is enough digits that strtod reconstructs
/// the exact double, which the replay-identity gate depends on.
std::string num17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        require(i + 4 < s.size(), "EventLog: truncated \\u escape");
        const unsigned long code = std::strtoul(s.substr(i + 1, 4).c_str(),
                                                nullptr, 16);
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default:
        out += s[i];
    }
  }
  return out;
}

/// Minimal field extractor for the flat one-level objects write_jsonl
/// emits. Finds `"key":` and returns the raw value token (string values
/// come back unquoted and unescaped).
class LineParser {
 public:
  explicit LineParser(const std::string& line) : line_(line) {}

  std::string raw(const std::string& key) const {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line_.find(needle);
    require(at != std::string::npos,
            "EventLog: missing field '" + key + "' in: " + line_);
    std::size_t i = at + needle.size();
    while (i < line_.size() && line_[i] == ' ') ++i;
    require(i < line_.size(), "EventLog: empty value for '" + key + "'");
    if (line_[i] == '"') {
      // String value: scan to the closing unescaped quote.
      std::size_t j = i + 1;
      while (j < line_.size()) {
        if (line_[j] == '\\') {
          j += 2;
          continue;
        }
        if (line_[j] == '"') break;
        ++j;
      }
      require(j < line_.size(), "EventLog: unterminated string for '" + key +
                                    "' in: " + line_);
      return unescape(line_.substr(i + 1, j - i - 1));
    }
    std::size_t j = i;
    while (j < line_.size() && line_[j] != ',' && line_[j] != '}') ++j;
    return line_.substr(i, j - i);
  }

  std::uint64_t u64(const std::string& key) const {
    return std::strtoull(raw(key).c_str(), nullptr, 10);
  }

  double f64(const std::string& key) const {
    return std::strtod(raw(key).c_str(), nullptr);
  }

 private:
  const std::string& line_;
};

}  // namespace

std::string to_string(ServiceEvent::Kind kind) {
  switch (kind) {
    case ServiceEvent::Kind::kSubmit:
      return "submit";
    case ServiceEvent::Kind::kAdmit:
      return "admit";
    case ServiceEvent::Kind::kPreempt:
      return "preempt";
    case ServiceEvent::Kind::kGrant:
      return "grant";
    case ServiceEvent::Kind::kStart:
      return "start";
    case ServiceEvent::Kind::kComplete:
      return "complete";
    case ServiceEvent::Kind::kRetune:
      return "retune";
  }
  throw InvalidArgument("unknown ServiceEvent::Kind");
}

ServiceEvent::Kind event_kind_from_string(const std::string& name) {
  if (name == "submit") return ServiceEvent::Kind::kSubmit;
  if (name == "admit") return ServiceEvent::Kind::kAdmit;
  if (name == "preempt") return ServiceEvent::Kind::kPreempt;
  if (name == "grant") return ServiceEvent::Kind::kGrant;
  if (name == "start") return ServiceEvent::Kind::kStart;
  if (name == "complete") return ServiceEvent::Kind::kComplete;
  if (name == "retune") return ServiceEvent::Kind::kRetune;
  throw InvalidArgument("unknown service event kind '" + name + "'");
}

void EventLog::write_jsonl(std::ostream& out) const {
  out << "{\"schema\": \"" << kSchema
      << "\", \"fabric_wavelengths\": " << context_.fabric_wavelengths
      << ", \"policy\": \"" << escape(context_.policy)
      << "\", \"seed\": " << context_.seed
      << ", \"events\": " << events_.size() << "}\n";
  for (const ServiceEvent& e : events_) {
    out << "{\"kind\": \"" << to_string(e.kind)
        << "\", \"t\": " << num17(e.time.count()) << ", \"job\": " << e.job
        << ", \"tenant\": " << e.tenant << ", \"w_lo\": " << e.w_lo
        << ", \"w_hi\": " << e.w_hi << ", \"cause\": \"" << escape(e.cause)
        << "\"}\n";
  }
}

void EventLog::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("EventLog: cannot open " + path);
  write_jsonl(out);
}

std::string EventLog::to_jsonl() const {
  std::ostringstream out;
  write_jsonl(out);
  return out.str();
}

EventLog EventLog::read_jsonl(std::istream& in) {
  EventLog log;
  std::string line;
  require(static_cast<bool>(std::getline(in, line)),
          "EventLog: line 1: empty stream (missing header line)");
  std::uint64_t declared = 0;
  try {
    const LineParser header(line);
    require(header.raw("schema") == kSchema,
            "expected schema '" + std::string(kSchema) + "', got: " + line);
    log.context_.fabric_wavelengths =
        static_cast<std::uint32_t>(header.u64("fabric_wavelengths"));
    log.context_.policy = header.raw("policy");
    log.context_.seed = header.u64("seed");
    declared = header.u64("events");
  } catch (const Error& e) {
    throw Error("EventLog: line 1: " + std::string(e.what()));
  }
  std::size_t line_number = 1;
  Seconds previous{0.0};
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    ServiceEvent e;
    try {
      const LineParser p(line);
      e.kind = event_kind_from_string(p.raw("kind"));
      e.time = Seconds{p.f64("t")};
      e.job = p.u64("job");
      e.tenant = static_cast<std::uint32_t>(p.u64("tenant"));
      e.w_lo = static_cast<std::uint32_t>(p.u64("w_lo"));
      e.w_hi = static_cast<std::uint32_t>(p.u64("w_hi"));
      e.cause = p.raw("cause");
    } catch (const Error& err) {
      throw Error("EventLog: line " + std::to_string(line_number) + ": " +
                  std::string(err.what()));
    }
    // The recorder appends in simulation order; a time reversal means the
    // file was edited, interleaved, or corrupted — replaying it would
    // silently misorder grants.
    if (!log.events_.empty() && e.time < previous) {
      throw Error("EventLog: line " + std::to_string(line_number) +
                  ": out-of-order timestamp " + num17(e.time.count()) +
                  " (previous event at " + num17(previous.count()) + ")");
    }
    previous = e.time;
    log.events_.push_back(std::move(e));
  }
  if (log.events_.size() != declared) {
    throw Error("EventLog: line " + std::to_string(line_number) +
                ": header declares " + std::to_string(declared) +
                " events but the file holds " +
                std::to_string(log.events_.size()) +
                (log.events_.size() < declared ? " (truncated?)"
                                               : " (extra lines?)"));
  }
  return log;
}

EventLog EventLog::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("EventLog: cannot open " + path);
  return read_jsonl(in);
}

}  // namespace wrht::obs
