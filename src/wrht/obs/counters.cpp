#include "wrht/obs/counters.hpp"

#include <algorithm>

#include "wrht/common/csv.hpp"

namespace wrht::obs {

void Counters::add(const std::string& name, std::uint64_t delta) {
  values_[name] += delta;
}

void Counters::observe_max(const std::string& name, std::uint64_t value) {
  auto [it, inserted] = values_.try_emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

std::uint64_t Counters::value(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

bool Counters::contains(const std::string& name) const {
  return values_.count(name) != 0;
}

void Counters::merge(const Counters& other) {
  for (const auto& [name, v] : other.values_) values_[name] += v;
}

void Counters::write_csv(const std::string& path) const {
  CsvWriter csv(path, {"counter", "value"});
  for (const auto& [name, v] : values_) {
    csv.add_row({name, std::to_string(v)});
  }
}

}  // namespace wrht::obs
