#include "wrht/obs/counters.hpp"

#include <algorithm>

#include "wrht/common/csv.hpp"
#include "wrht/common/error.hpp"

namespace wrht::obs {

void Counters::add(const std::string& name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  values_[name].value += delta;
}

void Counters::observe_max(const std::string& name, std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] =
      values_.try_emplace(name, Entry{value, Kind::kMax, std::nullopt});
  if (!inserted) {
    it->second.value = std::max(it->second.value, value);
    it->second.kind = Kind::kMax;
  }
}

void Counters::observe(const std::string& name, double value,
                       HistogramSpec spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = values_.try_emplace(name, Entry{0, Kind::kHist,
                                                        Histogram(spec)});
  require(it->second.kind == Kind::kHist,
          "Counters: observe() on non-histogram '" + name + "'");
  require(it->second.hist->spec() == spec,
          "Counters: histogram '" + name +
              "' observed with a different bucket spec");
  it->second.hist->observe(value);
  // Mirror the count into the scalar slot so value()/snapshot()/CSV see
  // histogram entries without a special case.
  it->second.value = it->second.hist->count();
}

std::uint64_t Counters::value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second.value;
}

std::optional<Histogram> Counters::distribution(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.kind != Kind::kHist) {
    return std::nullopt;
  }
  return it->second.hist;
}

bool Counters::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return values_.count(name) != 0;
}

std::size_t Counters::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return values_.size();
}

std::map<std::string, std::uint64_t> Counters::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, entry] : values_) out.emplace(name, entry.value);
  return out;
}

void Counters::merge(const Counters& other) {
  if (&other == this) return;
  // Copy under the source lock, fold under ours: never hold both (a
  // cross-thread merge cycle would otherwise deadlock).
  std::map<std::string, Entry> theirs;
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    theirs = other.values_;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : theirs) {
    auto [it, inserted] = values_.try_emplace(name, entry);
    if (inserted) continue;
    if (entry.kind == Kind::kHist || it->second.kind == Kind::kHist) {
      require(entry.kind == it->second.kind,
              "Counters: merging histogram '" + name +
                  "' into a scalar counter (or vice versa)");
      it->second.hist->merge(*entry.hist);
      it->second.value = it->second.hist->count();
    } else if (entry.kind == Kind::kMax || it->second.kind == Kind::kMax) {
      it->second.value = std::max(it->second.value, entry.value);
      it->second.kind = Kind::kMax;
    } else {
      it->second.value += entry.value;
    }
  }
}

void Counters::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  values_.clear();
}

void Counters::write_csv(const std::string& path) const {
  const auto snap = snapshot();
  CsvWriter csv(path, {"counter", "value"});
  for (const auto& [name, v] : snap) {
    csv.add_row({name, std::to_string(v)});
  }
}

}  // namespace wrht::obs
