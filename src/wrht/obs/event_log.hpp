// Structured, schema-versioned event log for the shared-fabric service.
//
// Every service transition — submit, admit, grant, start, complete,
// preempt, retune — is one ServiceEvent carrying the virtual timestamp,
// the job and tenant, the wavelength lease [w_lo, w_hi), and a free-form
// cause ("policy=backfill", "alg=wrht", ...). The log serializes as JSONL
// ("svc-events-1"): a header line with the run context, then one object
// per event in record order. Two properties make the file a first-class
// artifact rather than a debug dump:
//
//   * Deterministic and byte-stable: a (config, seed) pair produces a
//     byte-identical file run-to-run (pinned by the replay-determinism
//     tests), so event logs diff cleanly across code changes.
//   * Lossless timestamps: times print with round-trip precision (%.17g),
//     so read_jsonl() reconstructs the exact doubles and an event-log
//     replay reproduces the live ServiceReport aggregates bit-for-bit
//     (gated by bench_svc_telemetry).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "wrht/common/units.hpp"

namespace wrht::obs {

struct ServiceEvent {
  enum class Kind : std::uint8_t {
    kSubmit,    ///< job offered to the service (arrival)
    kAdmit,     ///< admission policy selected the job
    kPreempt,   ///< job pushed back to the queue (reserved; no policy
                ///< currently preempts)
    kGrant,     ///< wavelength slice allocated as a lease
    kStart,     ///< service begins on the granted slice
    kComplete,  ///< job finished; slice released
    kRetune,    ///< granted lanes changed tenant hands (MRRs retuned)
  };

  Kind kind = Kind::kSubmit;
  Seconds time{0.0};
  std::uint64_t job = 0;
  std::uint32_t tenant = 0;
  /// Leased slice [w_lo, w_hi); both zero before a slice exists.
  std::uint32_t w_lo = 0;
  std::uint32_t w_hi = 0;
  std::string cause;

  friend bool operator==(const ServiceEvent&, const ServiceEvent&) = default;
};

[[nodiscard]] std::string to_string(ServiceEvent::Kind kind);
/// Inverse of to_string(); throws InvalidArgument for unknown names.
[[nodiscard]] ServiceEvent::Kind event_kind_from_string(
    const std::string& name);

class EventLog {
 public:
  static constexpr const char* kSchema = "svc-events-1";

  /// Run context carried by the JSONL header line; replay needs the
  /// fabric width to rebuild utilization.
  struct Context {
    std::uint32_t fabric_wavelengths = 0;
    std::string policy;
    std::uint64_t seed = 0;

    friend bool operator==(const Context&, const Context&) = default;
  };

  void set_context(Context context) { context_ = std::move(context); }
  [[nodiscard]] const Context& context() const { return context_; }

  void record(ServiceEvent event) { events_.push_back(std::move(event)); }
  /// Pre-sizes the event storage; a service that knows its job count can
  /// avoid mid-run reallocation (~6 events per job).
  void reserve(std::size_t n) { events_.reserve(n); }
  [[nodiscard]] const std::vector<ServiceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Header line + one JSON object per event, in record order.
  void write_jsonl(std::ostream& out) const;
  /// write_jsonl() to `path`; throws wrht::Error if the file cannot open.
  void write_file(const std::string& path) const;
  /// Serialized form as a string (what write_jsonl emits) — the
  /// replay-determinism tests compare these byte-for-byte.
  [[nodiscard]] std::string to_jsonl() const;

  /// Parses a stream produced by write_jsonl(). Throws InvalidArgument on
  /// a missing/foreign schema marker or a malformed line.
  [[nodiscard]] static EventLog read_jsonl(std::istream& in);
  [[nodiscard]] static EventLog read_file(const std::string& path);

 private:
  Context context_;
  std::vector<ServiceEvent> events_;
};

}  // namespace wrht::obs
