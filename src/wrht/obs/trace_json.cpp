#include "wrht/obs/trace_json.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "wrht/common/error.hpp"

namespace wrht::obs {

namespace {

/// Fixed-precision microseconds: deterministic across runs and platforms.
std::string format_us(Seconds t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", t.count() * 1e6);
  return buf;
}

/// Counter values: integers print exactly ("6"), everything else with %g
/// so the common whole-valued tracks stay clean in the JSON.
std::string format_value(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::string process_name)
    : process_name_(std::move(process_name)) {}

void ChromeTraceSink::span(const TraceSpan& s) { spans_.push_back(s); }

void ChromeTraceSink::counter(const CounterSample& s) {
  counters_.push_back(s);
}

void ChromeTraceSink::set_track_name(std::uint32_t track,
                                     const std::string& name) {
  track_names_[track] = name;
}

std::string ChromeTraceSink::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void ChromeTraceSink::write(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Metadata first: process name, then the named tracks (track id order —
  // std::map keeps this stable).
  sep();
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      << "\"args\":{\"name\":\"" << escape(process_name_) << "\"}}";
  for (const auto& [track, name] : track_names_) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << track
        << ",\"args\":{\"name\":\"" << escape(name) << "\"}}";
  }

  for (const TraceSpan& s : spans_) {
    sep();
    out << "{\"name\":\"" << escape(s.name) << "\",\"cat\":\""
        << escape(s.category) << "\",\"ph\":\"X\",\"ts\":" << format_us(s.start)
        << ",\"dur\":" << format_us(s.duration) << ",\"pid\":0,\"tid\":"
        << s.track << ",\"args\":{";
    bool first_arg = true;
    for (const auto& [key, value] : s.args) {
      if (!first_arg) out << ",";
      first_arg = false;
      out << "\"" << escape(key) << "\":\"" << escape(value) << "\"";
    }
    for (const auto& [key, value] : s.num_args) {
      if (!first_arg) out << ",";
      first_arg = false;
      out << "\"" << escape(key) << "\":" << format_value(value);
    }
    out << "}}";
  }

  // Counter tracks after the spans: "C" events keyed by name within a tid;
  // Perfetto draws each as a step function holding until the next sample.
  for (const CounterSample& c : counters_) {
    sep();
    out << "{\"name\":\"" << escape(c.name) << "\",\"ph\":\"C\",\"ts\":"
        << format_us(c.time) << ",\"pid\":0,\"tid\":" << c.track
        << ",\"args\":{\"value\":" << format_value(c.value) << "}}";
  }

  // Flow arrows last: each FlowArrow becomes an "s"/"f" pair sharing an
  // id; the viewer binds each endpoint to the span enclosing its (ts, tid)
  // and draws the connecting arrow. bp:"e" attaches the finish to the
  // enclosing span rather than the next slice's start.
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const FlowArrow& f = flows_[i];
    sep();
    out << "{\"name\":\"" << escape(f.name) << "\",\"cat\":\""
        << escape(f.category) << "\",\"ph\":\"s\",\"id\":" << i
        << ",\"ts\":" << format_us(f.start) << ",\"pid\":0,\"tid\":"
        << f.start_track << "}";
    sep();
    out << "{\"name\":\"" << escape(f.name) << "\",\"cat\":\""
        << escape(f.category) << "\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << i
        << ",\"ts\":" << format_us(f.finish) << ",\"pid\":0,\"tid\":"
        << f.finish_track << "}";
  }
  out << "\n]}\n";
}

void ChromeTraceSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("ChromeTraceSink: cannot open '" + path + "'");
  write(out);
}

}  // namespace wrht::obs
