// Step-level trace instrumentation for the simulators.
//
// TraceSink is the single interface every timing-producing layer emits
// into: the optical ring posts one span per communication step with child
// spans per RWA round, the electrical simulators post one span per step,
// and the data-level executor posts logical-time spans. The default is no
// sink at all — instrumentation sites hold a possibly-null Probe and every
// emission is guarded by one pointer test, so a run without observers costs
// nothing but untaken branches (verified against bench_micro).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "wrht/common/units.hpp"
#include "wrht/obs/counters.hpp"

namespace wrht::obs {

class OccupancySampler;  // obs/occupancy.hpp
class TransferLog;       // obs/transfer_log.hpp

/// One complete span on the run timeline. `track` separates concurrent
/// timelines (e.g. several network executions in one trace file); spans on
/// the same track nest by time containment, so a step span naturally
/// parents its round spans.
struct TraceSpan {
  std::string name;      ///< step label / round id
  std::string category;  ///< "step", "round", "flow-step", "packet-step", ...
  Seconds start{0.0};
  Seconds duration{0.0};
  std::uint32_t track = 0;
  /// Key/value annotations (rounds, wavelengths, flows, link load, ...).
  std::vector<std::pair<std::string, std::string>> args;
  /// Numeric annotations, emitted as JSON numbers after `args`; the
  /// value is formatted once at write() time instead of being
  /// stringified by the emitter.
  std::vector<std::pair<std::string, double>> num_args;
};

/// One sample on a numeric counter track (wavelengths in use, link load,
/// active flows, ...). Renders as a Perfetto "C"-phase event: the value
/// holds from `time` until the track's next sample.
struct CounterSample {
  std::string name;  ///< counter track name, e.g. "wavelengths in use"
  Seconds time{0.0};
  double value = 0.0;
  std::uint32_t track = 0;
};

/// Receiver of trace spans. Implementations must tolerate spans arriving
/// out of global time order across tracks (each simulator emits its own
/// track in order).
class TraceSink {
 public:
  virtual ~TraceSink();
  virtual void span(const TraceSpan& span) = 0;
  /// Counter samples are optional for sinks; the default discards them so
  /// span-only sinks (and the pre-counter tests) stay unchanged.
  virtual void counter(const CounterSample& sample) { (void)sample; }
};

/// Collects spans in memory; the unit tests' sink of choice.
class MemoryTraceSink final : public TraceSink {
 public:
  void span(const TraceSpan& s) override { spans_.push_back(s); }
  void counter(const CounterSample& s) override { counters_.push_back(s); }
  [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<CounterSample>& counter_samples() const {
    return counters_;
  }
  void clear() {
    spans_.clear();
    counters_.clear();
  }

 private:
  std::vector<TraceSpan> spans_;
  std::vector<CounterSample> counters_;
};

/// The observation bundle instrumented code carries: both members optional,
/// both null by default. `track` is the timeline spans are tagged with, so
/// callers can lay several executions side by side in one trace.
struct Probe {
  TraceSink* trace = nullptr;
  Counters* counters = nullptr;
  std::uint32_t track = 0;
  /// Resource-occupancy sampler (obs/occupancy.hpp); null by default like
  /// the other members. Appended last so existing aggregate initializers
  /// (`Probe{&trace, &counters, 2}`) keep compiling unchanged.
  OccupancySampler* occupancy = nullptr;
  /// Transfer-level timeline sink for causal blame attribution
  /// (obs/transfer_log.hpp, consumed by wrht::diag); null by default and
  /// appended after `occupancy` for the same aggregate-init compatibility.
  TransferLog* transfers = nullptr;

  [[nodiscard]] bool active() const {
    return trace || counters || occupancy || transfers;
  }

  /// Emits `s` (stamped with this probe's track) if a sink is attached.
  void span(TraceSpan s) const {
    if (trace == nullptr) return;
    s.track = track;
    trace->span(s);
  }

  /// Emits one counter-track sample if a sink is attached.
  void counter_sample(const std::string& name, Seconds time,
                      double value) const {
    if (trace == nullptr) return;
    trace->counter(CounterSample{name, time, value, track});
  }

  void count(const std::string& name, std::uint64_t delta = 1) const {
    if (counters != nullptr) counters->add(name, delta);
  }

  void count_max(const std::string& name, std::uint64_t value) const {
    if (counters != nullptr) counters->observe_max(name, value);
  }
};

}  // namespace wrht::obs
