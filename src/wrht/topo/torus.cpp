#include "wrht/topo/torus.hpp"

namespace wrht::topo {

Torus::Torus(std::uint32_t rows, std::uint32_t cols)
    : rows_(rows), cols_(cols) {
  require(rows >= 2 && cols >= 2, "Torus: need at least 2x2");
}

NodeId Torus::node_at(std::uint32_t row, std::uint32_t col) const {
  require(row < rows_ && col < cols_, "Torus: coordinate out of range");
  return row * cols_ + col;
}

std::uint32_t Torus::row_of(NodeId node) const {
  check_node(node);
  return node / cols_;
}

std::uint32_t Torus::col_of(NodeId node) const {
  check_node(node);
  return node % cols_;
}

}  // namespace wrht::topo
