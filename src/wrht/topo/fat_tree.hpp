// Two-level fat-tree topology (hosts -> edge routers -> core routers),
// matching the paper's electrical baseline: "two-level cluster with 32-port
// routers" (Table 2).
//
// Each edge router dedicates half of its ports to hosts and half to uplinks,
// one uplink per core router. Every directed link gets its own id so the
// flow-level simulator can model full-duplex capacity independently.
#pragma once

#include <cstdint>
#include <vector>

#include "wrht/common/error.hpp"

namespace wrht::topo {

using HostId = std::uint32_t;
using LinkId = std::uint32_t;

class FatTree {
 public:
  /// Builds a two-level fat tree for `num_hosts` hosts using routers with
  /// `router_ports` ports (default 32 per the paper).
  explicit FatTree(std::uint32_t num_hosts, std::uint32_t router_ports = 32);

  [[nodiscard]] std::uint32_t num_hosts() const { return hosts_; }
  [[nodiscard]] std::uint32_t router_ports() const { return ports_; }
  [[nodiscard]] std::uint32_t hosts_per_edge() const { return hosts_per_edge_; }
  [[nodiscard]] std::uint32_t num_edges() const { return edges_; }
  [[nodiscard]] std::uint32_t num_cores() const { return cores_; }
  /// Total number of directed links.
  [[nodiscard]] std::uint32_t num_links() const { return links_; }

  [[nodiscard]] std::uint32_t edge_of(HostId host) const;

  /// Directed link ids.
  [[nodiscard]] LinkId host_to_edge(HostId host) const;
  [[nodiscard]] LinkId edge_to_host(HostId host) const;
  [[nodiscard]] LinkId edge_to_core(std::uint32_t edge,
                                    std::uint32_t core) const;
  [[nodiscard]] LinkId core_to_edge(std::uint32_t core,
                                    std::uint32_t edge) const;

  /// A routed path: the directed links traversed plus the number of routers
  /// crossed (store-and-forward delay applies per router).
  struct Route {
    std::vector<LinkId> links;
    std::uint32_t routers = 0;
  };

  /// Shortest path host -> host. Same edge: host-edge-host (1 router).
  /// Different edges: host-edge-core-edge-host (3 routers); the core is
  /// chosen by destination (D-mod-k routing, dst mod cores), the standard
  /// deterministic fat-tree rule SimGrid implements — flows to distinct
  /// hosts of a rack spread over distinct cores.
  [[nodiscard]] Route route(HostId src, HostId dst) const;

  void check_host(HostId host) const {
    require(host < hosts_, "FatTree: host id out of range");
  }

 private:
  std::uint32_t hosts_;
  std::uint32_t ports_;
  std::uint32_t hosts_per_edge_;
  std::uint32_t edges_;
  std::uint32_t cores_;
  std::uint32_t links_;
};

}  // namespace wrht::topo
