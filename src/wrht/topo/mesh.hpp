// 2-D mesh topology (torus without the wraparound links) for the second
// half of the paper's §6.1 extension. Rows and columns are *lines*: a
// lightpath between two nodes of a line has exactly one route, and an
// all-to-all among k line nodes loads the middle segment with ~k^2/4
// lightpaths per direction (the "one-stage model for a line" of Liang &
// Shen that the paper cites).
#pragma once

#include <cstdint>

#include "wrht/common/error.hpp"
#include "wrht/topo/ring.hpp"

namespace wrht::topo {

class Mesh {
 public:
  Mesh(std::uint32_t rows, std::uint32_t cols);

  [[nodiscard]] std::uint32_t rows() const { return rows_; }
  [[nodiscard]] std::uint32_t cols() const { return cols_; }
  [[nodiscard]] std::uint32_t size() const { return rows_ * cols_; }

  [[nodiscard]] NodeId node_at(std::uint32_t row, std::uint32_t col) const;
  [[nodiscard]] std::uint32_t row_of(NodeId node) const;
  [[nodiscard]] std::uint32_t col_of(NodeId node) const;

  /// Hops between two nodes of the same row/column line.
  [[nodiscard]] std::uint32_t line_distance(NodeId a, NodeId b) const;

  void check_node(NodeId node) const {
    require(node < size(), "Mesh: node id out of range");
  }

 private:
  std::uint32_t rows_;
  std::uint32_t cols_;
};

/// Wavelengths needed for a one-step all-to-all among k nodes of a line:
/// the middle segment carries ceil(k^2/4) lightpaths per direction.
[[nodiscard]] std::uint64_t line_all_to_all_wavelengths(std::uint64_t k);

}  // namespace wrht::topo
