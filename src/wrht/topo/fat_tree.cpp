#include "wrht/topo/fat_tree.hpp"

namespace wrht::topo {

FatTree::FatTree(std::uint32_t num_hosts, std::uint32_t router_ports)
    : hosts_(num_hosts), ports_(router_ports) {
  require(router_ports >= 4 && router_ports % 2 == 0,
          "FatTree: router_ports must be even and >= 4");
  require(num_hosts >= 2, "FatTree: need at least 2 hosts");
  hosts_per_edge_ = ports_ / 2;
  edges_ = (hosts_ + hosts_per_edge_ - 1) / hosts_per_edge_;
  cores_ = ports_ / 2;
  // Directed link layout:
  //   [0, hosts)                     host -> edge
  //   [hosts, 2*hosts)               edge -> host
  //   then edge->core and core->edge blocks of edges*cores each.
  links_ = 2 * hosts_ + 2 * edges_ * cores_;
}

std::uint32_t FatTree::edge_of(HostId host) const {
  check_host(host);
  return host / hosts_per_edge_;
}

LinkId FatTree::host_to_edge(HostId host) const {
  check_host(host);
  return host;
}

LinkId FatTree::edge_to_host(HostId host) const {
  check_host(host);
  return hosts_ + host;
}

LinkId FatTree::edge_to_core(std::uint32_t edge, std::uint32_t core) const {
  require(edge < edges_ && core < cores_, "FatTree: edge/core out of range");
  return 2 * hosts_ + edge * cores_ + core;
}

LinkId FatTree::core_to_edge(std::uint32_t core, std::uint32_t edge) const {
  require(edge < edges_ && core < cores_, "FatTree: edge/core out of range");
  return 2 * hosts_ + edges_ * cores_ + edge * cores_ + core;
}

FatTree::Route FatTree::route(HostId src, HostId dst) const {
  check_host(src);
  check_host(dst);
  require(src != dst, "FatTree: route to self");
  const std::uint32_t se = edge_of(src);
  const std::uint32_t de = edge_of(dst);
  Route r;
  if (se == de) {
    r.links = {host_to_edge(src), edge_to_host(dst)};
    r.routers = 1;
    return r;
  }
  const std::uint32_t core = dst % cores_;
  r.links = {host_to_edge(src), edge_to_core(se, core), core_to_edge(core, de),
             edge_to_host(dst)};
  r.routers = 3;
  return r;
}

}  // namespace wrht::topo
