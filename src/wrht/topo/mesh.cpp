#include "wrht/topo/mesh.hpp"

#include <cstdlib>

namespace wrht::topo {

Mesh::Mesh(std::uint32_t rows, std::uint32_t cols)
    : rows_(rows), cols_(cols) {
  require(rows >= 2 && cols >= 2, "Mesh: need at least 2x2");
}

NodeId Mesh::node_at(std::uint32_t row, std::uint32_t col) const {
  require(row < rows_ && col < cols_, "Mesh: coordinate out of range");
  return row * cols_ + col;
}

std::uint32_t Mesh::row_of(NodeId node) const {
  check_node(node);
  return node / cols_;
}

std::uint32_t Mesh::col_of(NodeId node) const {
  check_node(node);
  return node % cols_;
}

std::uint32_t Mesh::line_distance(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  require(row_of(a) == row_of(b) || col_of(a) == col_of(b),
          "Mesh: nodes do not share a line");
  if (row_of(a) == row_of(b)) {
    return col_of(a) > col_of(b) ? col_of(a) - col_of(b)
                                 : col_of(b) - col_of(a);
  }
  return row_of(a) > row_of(b) ? row_of(a) - row_of(b)
                               : row_of(b) - row_of(a);
}

std::uint64_t line_all_to_all_wavelengths(std::uint64_t k) {
  // On a line of k nodes the segment between positions floor(k/2)-1 and
  // floor(k/2) is crossed by every pair straddling it: floor(k/2)*ceil(k/2)
  // ordered pairs per direction.
  return (k / 2) * ((k + 1) / 2);
}

}  // namespace wrht::topo
