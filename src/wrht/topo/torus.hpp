// 2-D torus topology for the Section 6.1 extension of WRHT: the reduce
// stage runs per row, representatives synchronize along a column ring, and
// the broadcast stage replays in reverse. Each row and each column is a
// full optical ring, which lets the torus extension reuse the ring
// machinery unchanged.
#pragma once

#include <cstdint>

#include "wrht/common/error.hpp"
#include "wrht/topo/ring.hpp"

namespace wrht::topo {

class Torus {
 public:
  Torus(std::uint32_t rows, std::uint32_t cols);

  [[nodiscard]] std::uint32_t rows() const { return rows_; }
  [[nodiscard]] std::uint32_t cols() const { return cols_; }
  [[nodiscard]] std::uint32_t size() const { return rows_ * cols_; }

  [[nodiscard]] NodeId node_at(std::uint32_t row, std::uint32_t col) const;
  [[nodiscard]] std::uint32_t row_of(NodeId node) const;
  [[nodiscard]] std::uint32_t col_of(NodeId node) const;

  /// The ring formed by row r (length = cols). Positions along the ring map
  /// to global node ids via node_at(r, position).
  [[nodiscard]] Ring row_ring() const { return Ring(cols_); }
  /// The ring formed by any column (length = rows).
  [[nodiscard]] Ring col_ring() const { return Ring(rows_); }

  void check_node(NodeId node) const {
    require(node < size(), "Torus: node id out of range");
  }

 private:
  std::uint32_t rows_;
  std::uint32_t cols_;
};

}  // namespace wrht::topo
