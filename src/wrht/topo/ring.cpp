#include "wrht/topo/ring.hpp"

namespace wrht::topo {

Ring::Ring(std::uint32_t num_nodes) : n_(num_nodes) {
  require(num_nodes >= 2, "Ring: need at least 2 nodes");
}

std::uint32_t Ring::cw_distance(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  return (to + n_ - from) % n_;
}

std::uint32_t Ring::ccw_distance(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  return (from + n_ - to) % n_;
}

std::uint32_t Ring::distance(NodeId from, NodeId to) const {
  return std::min(cw_distance(from, to), ccw_distance(from, to));
}

Direction Ring::shortest_direction(NodeId from, NodeId to) const {
  return cw_distance(from, to) <= ccw_distance(from, to)
             ? Direction::kClockwise
             : Direction::kCounterClockwise;
}

std::uint32_t Ring::distance_along(NodeId from, NodeId to,
                                   Direction dir) const {
  return dir == Direction::kClockwise ? cw_distance(from, to)
                                      : ccw_distance(from, to);
}

NodeId Ring::advance(NodeId from, std::uint32_t hops, Direction dir) const {
  check_node(from);
  const std::uint32_t h = hops % n_;
  if (dir == Direction::kClockwise) return (from + h) % n_;
  return (from + n_ - h) % n_;
}

std::vector<std::uint32_t> Ring::segments(NodeId from, NodeId to,
                                          Direction dir) const {
  const std::uint32_t hops = distance_along(from, to, dir);
  std::vector<std::uint32_t> segs;
  segs.reserve(hops);
  NodeId at = from;
  for (std::uint32_t i = 0; i < hops; ++i) {
    // Clockwise segment k spans k -> k+1; counterclockwise segment k spans
    // k+1 -> k, so a CCW hop departing `at` crosses segment at-1.
    if (dir == Direction::kClockwise) {
      segs.push_back(at);
      at = (at + 1) % n_;
    } else {
      at = (at + n_ - 1) % n_;
      segs.push_back(at);
    }
  }
  return segs;
}

}  // namespace wrht::topo
