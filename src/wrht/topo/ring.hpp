// Ring topology used by the optical interconnect (TeraRack-style).
//
// N nodes sit on a bidirectional ring. Segment i of the clockwise fiber is
// the span node i -> node (i+1) mod N; segment i of the counterclockwise
// fiber is the span node (i+1) mod N -> node i. A lightpath occupies the
// contiguous run of segments between its endpoints in its direction.
#pragma once

#include <cstdint>
#include <vector>

#include "wrht/common/error.hpp"

namespace wrht::topo {

using NodeId = std::uint32_t;

enum class Direction { kClockwise, kCounterClockwise };

[[nodiscard]] constexpr Direction opposite(Direction d) {
  return d == Direction::kClockwise ? Direction::kCounterClockwise
                                    : Direction::kClockwise;
}

class Ring {
 public:
  explicit Ring(std::uint32_t num_nodes);

  [[nodiscard]] std::uint32_t size() const { return n_; }

  /// Hops travelled going clockwise from `from` to `to`.
  [[nodiscard]] std::uint32_t cw_distance(NodeId from, NodeId to) const;
  /// Hops travelled going counterclockwise from `from` to `to`.
  [[nodiscard]] std::uint32_t ccw_distance(NodeId from, NodeId to) const;
  /// min(cw, ccw).
  [[nodiscard]] std::uint32_t distance(NodeId from, NodeId to) const;

  /// Direction of the shorter path; clockwise wins ties.
  [[nodiscard]] Direction shortest_direction(NodeId from, NodeId to) const;

  /// Hops along `dir` from `from` to `to`.
  [[nodiscard]] std::uint32_t distance_along(NodeId from, NodeId to,
                                             Direction dir) const;

  /// Node reached from `from` after `hops` steps in `dir`.
  [[nodiscard]] NodeId advance(NodeId from, std::uint32_t hops,
                               Direction dir) const;

  /// Segment indices (see file comment) crossed travelling from `from` to
  /// `to` in `dir`. Empty when from == to.
  [[nodiscard]] std::vector<std::uint32_t> segments(NodeId from, NodeId to,
                                                    Direction dir) const;

  void check_node(NodeId node) const {
    require(node < n_, "Ring: node id out of range");
  }

 private:
  std::uint32_t n_;
};

}  // namespace wrht::topo
