#!/usr/bin/env bash
# Perf smoke run: builds wrht_perf, runs the tiny micro- and scale-suites,
# and checks four contracts:
#
#   1. BENCH_micro.json exists and carries the wrht-perf-1 schema markers
#      (schema id, phase table, thread efficiency, peak RSS).
#   2. The measurement passes the checked-in tiny baseline
#      (bench/baselines/micro-tiny.baseline) — a real perf regression or a
#      metric-schema drift fails the script.
#   3. The regression path actually fires: a doctored baseline with an
#      injected 2x slowdown on every metric must make wrht_perf exit
#      non-zero. Catches comparator rot (a comparator that never fails is
#      worse than none).
#   4. The scale suite (wrht_perf --scale) passes its tiny baseline and
#      writes BENCH_scale.json carrying the sweep-volume gate metric
#      (scale_sweep.points_x_max_n) — the harness itself exits 1 when the
#      sweep's points x max N drops below 10x the micro sweep's volume.
#
# Wall-clock baselines are machine-sensitive; thresholds in the checked-in
# baseline are generous (4x slowdown). Refresh with
# `wrht_perf --write-baseline` per EXPERIMENTS.md when they drift for
# legitimate reasons.
#
# Usage: scripts/perf_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
BUILD_DIR="$(cd "$BUILD_DIR" && pwd)"

cmake --build "$BUILD_DIR" -j "$(nproc)" --target wrht_perf

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

echo "--- wrht_perf tiny vs checked-in baseline"
"$BUILD_DIR/examples/wrht_perf" --tiny \
  --baseline "$ROOT/bench/baselines/micro-tiny.baseline" \
  --out BENCH_micro.json

echo "--- BENCH_micro.json schema markers"
for marker in '"schema": "wrht-perf-1"' '"phases"' '"thread_efficiency"' \
              '"peak_rss_bytes"' '"metrics"'; do
  if ! grep -qF "$marker" BENCH_micro.json; then
    echo "FAIL: BENCH_micro.json is missing $marker"
    exit 1
  fi
done
echo "OK: schema markers present"

echo "--- wrht_perf scale tiny vs checked-in baseline"
"$BUILD_DIR/examples/wrht_perf" --scale --tiny \
  --baseline "$ROOT/bench/baselines/scale-tiny.baseline" \
  --out BENCH_scale.json

echo "--- BENCH_scale.json schema markers"
for marker in '"schema": "wrht-perf-1"' '"name": "scale"' \
              'scale_sweep.points_x_max_n' '"peak_rss_bytes"'; do
  if ! grep -qF "$marker" BENCH_scale.json; then
    echo "FAIL: BENCH_scale.json is missing $marker"
    exit 1
  fi
done
echo "OK: scale schema markers present"

echo "--- injected 2x slowdown must regress"
# Halve every lower-is-better value and double every higher-is-better one,
# with a 0.9 drift threshold: the fresh measurement then reads as a 2x
# slowdown across the board and the comparison must fail.
awk -F, 'BEGIN{OFS=","}
  /^#/ || /^metric/ {print; next}
  {if ($4 == "lower") $2 = $2 / 2; else $2 = $2 * 2; $3 = 0.9; print}' \
  "$ROOT/bench/baselines/micro-tiny.baseline" > doctored.baseline
if "$BUILD_DIR/examples/wrht_perf" --tiny --baseline doctored.baseline \
    --out /dev/null > doctored.log 2>&1; then
  echo "FAIL: wrht_perf exited 0 against a 2x-slowdown baseline"
  tail -n 20 doctored.log
  exit 1
fi
echo "OK: regression path fires (non-zero exit)"

echo "perf smoke passed"
