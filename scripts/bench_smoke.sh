#!/usr/bin/env bash
# Bench smoke run: builds every figure/table bench, runs each once in tiny
# mode (WRHT_BENCH_TINY=1 shrinks the grids to seconds-scale runs with the
# same CSV schema), and checks that the header of every emitted CSV is
# byte-identical to the checked-in reference CSV at the repo root AND that
# the tiny grid produced exactly the expected number of data rows. Catches
# a bench that crashes, stops writing its CSV, silently changes schema, or
# truncates its sweep. A row-count trip exits immediately, naming the
# offending bench — a truncated sweep means the grid expansion itself is
# broken, and every later bench shares that machinery, so their output
# would only obscure the culprit. ablation_overlap.csv additionally gets
# its full column schema pinned here (the overlap/planner columns feed the
# reconfigure-or-not analysis, and the checked-in reference would follow a
# silently drifted writer). Finishes with a 1-repetition bench_micro pass
# so the microbenchmarks cannot rot either.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
# Absolutize: the smoke runs from a temp directory so CSVs never clobber
# the checked-in references, which breaks a relative [build-dir].
BUILD_DIR="$(cd "$BUILD_DIR" && pwd)"

# Bench name == CSV name; the binary is bench_<name>. The row count is the
# size of the bench's tiny grid (workloads x nodes x wavelengths x series,
# or the bench's own table shape) — update it when a grid changes shape.
BENCHES=(
  table1_steps
  fig2_motivating
  fig4_grouped_nodes
  fig5_wavelengths
  fig6_scaling
  fig7_electrical_vs_optical
  ablation_rwa
  ablation_alltoall
  ablation_convention
  ablation_reconfig
  ablation_overlap
  ablation_utilization
  ablation_svc_policies
  ablation_svc_telemetry
)
# Bench binaries whose CSV name differs from the binary name
# (bench_svc_policies writes ablation_svc_policies.csv and gates its own
# policy-ranking claims, exiting non-zero when they fail).
declare -A BIN_OVERRIDE=(
  [ablation_svc_policies]=bench_svc_policies
  [ablation_svc_telemetry]=bench_svc_telemetry
)
declare -A EXPECTED_ROWS=(
  [table1_steps]=4
  [fig2_motivating]=2
  [fig4_grouped_nodes]=2
  [fig5_wavelengths]=8
  [fig6_scaling]=8
  [fig7_electrical_vs_optical]=8
  [ablation_rwa]=16
  [ablation_alltoall]=2
  [ablation_convention]=2
  [ablation_reconfig]=3
  [ablation_overlap]=4
  [ablation_utilization]=8
  [ablation_svc_policies]=12
  [ablation_svc_telemetry]=4
)

targets=()
for b in "${BENCHES[@]}"; do targets+=("${BIN_OVERRIDE[$b]:-bench_$b}"); done
targets+=(bench_micro wrht_analyze)
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${targets[@]}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail=0
for b in "${BENCHES[@]}"; do
  bin="${BIN_OVERRIDE[$b]:-bench_$b}"
  echo "--- $bin (tiny)"
  if ! WRHT_BENCH_TINY=1 "$BUILD_DIR/bench/$bin" > "$bin.log" 2>&1; then
    echo "FAIL: $bin exited non-zero; last lines:"
    tail -n 20 "$bin.log"
    fail=1
    continue
  fi
  if [[ ! -f "$b.csv" ]]; then
    echo "FAIL: $bin did not write $b.csv"
    fail=1
    continue
  fi
  expected="$(head -n 1 "$ROOT/$b.csv")"
  actual="$(head -n 1 "$b.csv")"
  if [[ "$actual" != "$expected" ]]; then
    echo "FAIL: $b.csv header drifted"
    echo "  checked-in: $expected"
    echo "  emitted   : $actual"
    fail=1
    continue
  fi
  rows=$(($(wc -l < "$b.csv") - 1))
  if [[ "$rows" -ne "${EXPECTED_ROWS[$b]}" ]]; then
    # Fail fast: a wrong row count means the sweep grid itself truncated,
    # so later benches only bury the first culprit.
    echo "FAIL: $bin: $b.csv has $rows rows, expected ${EXPECTED_ROWS[$b]}"
    echo "bench smoke FAILED (row-count check tripped on $bin)"
    exit 1
  fi
  echo "OK: $b.csv ($rows rows, header matches)"
done

# ablation_overlap.csv: pin the full column schema, not just reference
# equality — the reconfigure-or-not analysis consumes these columns by
# name, and the checked-in reference CSV would follow a drifted writer.
overlap_schema='wavelengths,elements,wrht_serial_s,wrht_overlap_s,wrht_hidden_s,flat_overlap_s,ring_overlap_s,sim_best,planner_choice,planner_predicted_s,planner_ok'
if [[ -f ablation_overlap.csv ]]; then
  overlap_header="$(head -n 1 ablation_overlap.csv)"
  if [[ "$overlap_header" != "$overlap_schema" ]]; then
    echo "FAIL: ablation_overlap.csv header schema drifted"
    echo "  expected: $overlap_schema"
    echo "  emitted : $overlap_header"
    exit 1
  fi
  echo "OK: ablation_overlap.csv column schema pinned"
fi

# Telemetry side-channel artifacts from bench_svc_telemetry: the event log
# must lead with its svc-events-1 schema marker and hold exactly the row
# count its own header promises, and the time-series CSV must keep the
# metrics export schema. Each check fails fast naming the offending file —
# downstream tooling (wrht_analyze --service, CI artifact consumers) parses
# these by schema, so a drifted file is worse than a missing one.
if [[ ! -f svc_events.jsonl ]]; then
  echo "FAIL: bench_svc_telemetry did not write svc_events.jsonl"
  exit 1
fi
if ! head -n 1 svc_events.jsonl | grep -q '"schema": "svc-events-1"'; then
  echo "FAIL: svc_events.jsonl is missing the svc-events-1 schema marker"
  echo "  header: $(head -n 1 svc_events.jsonl)"
  exit 1
fi
declared_events="$(head -n 1 svc_events.jsonl \
  | sed -n 's/.*"events": \([0-9]*\).*/\1/p')"
actual_events="$(($(wc -l < svc_events.jsonl) - 1))"
if [[ -z "$declared_events" || "$actual_events" -ne "$declared_events" ]]; then
  echo "FAIL: svc_events.jsonl declares ${declared_events:-?} events but" \
       "holds $actual_events lines after the header"
  exit 1
fi
echo "OK: svc_events.jsonl (schema marker + $actual_events events)"

timeseries_schema='metric,kind,t_s,value'
if [[ ! -f svc_telemetry_timeseries.csv ]]; then
  echo "FAIL: bench_svc_telemetry did not write svc_telemetry_timeseries.csv"
  exit 1
fi
timeseries_header="$(head -n 1 svc_telemetry_timeseries.csv)"
if [[ "$timeseries_header" != "$timeseries_schema" ]]; then
  echo "FAIL: svc_telemetry_timeseries.csv header schema drifted"
  echo "  expected: $timeseries_schema"
  echo "  emitted : $timeseries_header"
  exit 1
fi
echo "OK: svc_telemetry_timeseries.csv column schema pinned"

# Causal blame smoke: wrht_analyze --blame must emit a wrht-blame-1 report
# whose accounting identity holds. The CLI gates the identity itself
# (verify::check_blame_identity, exit 1 on breakage); the schema marker and
# the attributed==total sum are re-checked here on the emitted bytes so a
# writer that drifts away from what the CLI validated still trips the smoke.
echo "--- wrht_analyze --blame"
if ! "$BUILD_DIR/examples/wrht_analyze" 32 4096 8 wrht optical-ring \
    --blame smoke_blame.json > wrht_analyze_blame.log 2>&1; then
  echo "FAIL: wrht_analyze --blame exited non-zero (identity gate?); last lines:"
  tail -n 20 wrht_analyze_blame.log
  exit 1
fi
if ! head -n 2 smoke_blame.json | grep -q '"schema": "wrht-blame-1"'; then
  echo "FAIL: smoke_blame.json is missing the wrht-blame-1 schema marker"
  echo "  head: $(head -n 2 smoke_blame.json | tr '\n' ' ')"
  exit 1
fi
blame_total="$(sed -n 's/.*"total_time": \([^,]*\),*$/\1/p' smoke_blame.json \
  | head -n 1)"
blame_attr="$(sed -n 's/.*"attributed_time": \([^,]*\),*$/\1/p' \
  smoke_blame.json | head -n 1)"
if [[ -z "$blame_total" || -z "$blame_attr" ]] || \
   ! awk -v t="$blame_total" -v a="$blame_attr" \
       'BEGIN { d = t - a; if (d < 0) d = -d;
                tol = 1e-9 * (t > 0 ? t : 1);
                exit (d <= tol) ? 0 : 1 }'; then
  echo "FAIL: smoke_blame.json blame identity broken:" \
       "attributed ${blame_attr:-?} != total ${blame_total:-?}"
  exit 1
fi
echo "OK: smoke_blame.json (schema marker + identity: $blame_attr s)"

# Stash the telemetry artifacts outside the temp dir (deleted on exit) so
# CI can upload them alongside the smoke logs.
mkdir -p "$BUILD_DIR/telemetry_artifacts"
cp svc_events.jsonl svc_telemetry_timeseries.csv svc_trace.json \
   ablation_svc_telemetry.csv smoke_blame.json \
   "$BUILD_DIR/telemetry_artifacts/"
echo "OK: telemetry artifacts staged in $BUILD_DIR/telemetry_artifacts"

# Microbenchmark smoke: one repetition at minimal min_time just proves every
# registered benchmark still runs to completion.
echo "--- bench_micro (1 repetition)"
if ! "$BUILD_DIR/bench/bench_micro" --benchmark_min_time=0.01 \
    --benchmark_repetitions=1 > bench_micro.log 2>&1; then
  echo "FAIL: bench_micro exited non-zero; last lines:"
  tail -n 20 bench_micro.log
  fail=1
else
  echo "OK: bench_micro ($(grep -c '^BM_' bench_micro.log || true) benchmark lines)"
fi

if [[ $fail -ne 0 ]]; then
  echo "bench smoke FAILED"
  exit 1
fi
echo "bench smoke passed: ${#BENCHES[@]} benches + bench_micro, all CSVs match"
