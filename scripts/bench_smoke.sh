#!/usr/bin/env bash
# Bench smoke run: builds every figure/table bench, runs each once in tiny
# mode (WRHT_BENCH_TINY=1 shrinks the grids to seconds-scale runs with the
# same CSV schema), and checks that the header of every emitted CSV is
# byte-identical to the checked-in reference CSV at the repo root. Catches
# a bench that crashes, stops writing its CSV, or silently changes schema.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

# Bench name == CSV name; the binary is bench_<name>.
BENCHES=(
  table1_steps
  fig2_motivating
  fig4_grouped_nodes
  fig5_wavelengths
  fig6_scaling
  fig7_electrical_vs_optical
  ablation_rwa
  ablation_alltoall
  ablation_convention
  ablation_reconfig
)

targets=()
for b in "${BENCHES[@]}"; do targets+=("bench_$b"); done
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${targets[@]}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail=0
for b in "${BENCHES[@]}"; do
  echo "--- bench_$b (tiny)"
  if ! WRHT_BENCH_TINY=1 "$BUILD_DIR/bench/bench_$b" > "bench_$b.log" 2>&1; then
    echo "FAIL: bench_$b exited non-zero; last lines:"
    tail -n 20 "bench_$b.log"
    fail=1
    continue
  fi
  if [[ ! -f "$b.csv" ]]; then
    echo "FAIL: bench_$b did not write $b.csv"
    fail=1
    continue
  fi
  expected="$(head -n 1 "$ROOT/$b.csv")"
  actual="$(head -n 1 "$b.csv")"
  if [[ "$actual" != "$expected" ]]; then
    echo "FAIL: $b.csv header drifted"
    echo "  checked-in: $expected"
    echo "  emitted   : $actual"
    fail=1
    continue
  fi
  rows=$(($(wc -l < "$b.csv") - 1))
  echo "OK: $b.csv ($rows rows, header matches)"
done

if [[ $fail -ne 0 ]]; then
  echo "bench smoke FAILED"
  exit 1
fi
echo "bench smoke passed: ${#BENCHES[@]} benches, all CSV headers match"
