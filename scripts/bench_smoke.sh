#!/usr/bin/env bash
# Bench smoke run: builds every figure/table bench, runs each once in tiny
# mode (WRHT_BENCH_TINY=1 shrinks the grids to seconds-scale runs with the
# same CSV schema), and checks that the header of every emitted CSV is
# byte-identical to the checked-in reference CSV at the repo root AND that
# the tiny grid produced exactly the expected number of data rows. Catches
# a bench that crashes, stops writing its CSV, silently changes schema, or
# truncates its sweep. Finishes with a 1-repetition bench_micro pass so the
# microbenchmarks cannot rot either.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
# Absolutize: the smoke runs from a temp directory so CSVs never clobber
# the checked-in references, which breaks a relative [build-dir].
BUILD_DIR="$(cd "$BUILD_DIR" && pwd)"

# Bench name == CSV name; the binary is bench_<name>. The row count is the
# size of the bench's tiny grid (workloads x nodes x wavelengths x series,
# or the bench's own table shape) — update it when a grid changes shape.
BENCHES=(
  table1_steps
  fig2_motivating
  fig4_grouped_nodes
  fig5_wavelengths
  fig6_scaling
  fig7_electrical_vs_optical
  ablation_rwa
  ablation_alltoall
  ablation_convention
  ablation_reconfig
  ablation_overlap
  ablation_utilization
)
declare -A EXPECTED_ROWS=(
  [table1_steps]=4
  [fig2_motivating]=2
  [fig4_grouped_nodes]=2
  [fig5_wavelengths]=8
  [fig6_scaling]=8
  [fig7_electrical_vs_optical]=8
  [ablation_rwa]=16
  [ablation_alltoall]=2
  [ablation_convention]=2
  [ablation_reconfig]=3
  [ablation_overlap]=4
  [ablation_utilization]=8
)

targets=()
for b in "${BENCHES[@]}"; do targets+=("bench_$b"); done
targets+=(bench_micro)
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${targets[@]}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail=0
for b in "${BENCHES[@]}"; do
  echo "--- bench_$b (tiny)"
  if ! WRHT_BENCH_TINY=1 "$BUILD_DIR/bench/bench_$b" > "bench_$b.log" 2>&1; then
    echo "FAIL: bench_$b exited non-zero; last lines:"
    tail -n 20 "bench_$b.log"
    fail=1
    continue
  fi
  if [[ ! -f "$b.csv" ]]; then
    echo "FAIL: bench_$b did not write $b.csv"
    fail=1
    continue
  fi
  expected="$(head -n 1 "$ROOT/$b.csv")"
  actual="$(head -n 1 "$b.csv")"
  if [[ "$actual" != "$expected" ]]; then
    echo "FAIL: $b.csv header drifted"
    echo "  checked-in: $expected"
    echo "  emitted   : $actual"
    fail=1
    continue
  fi
  rows=$(($(wc -l < "$b.csv") - 1))
  if [[ "$rows" -ne "${EXPECTED_ROWS[$b]}" ]]; then
    echo "FAIL: $b.csv has $rows rows, expected ${EXPECTED_ROWS[$b]}"
    fail=1
    continue
  fi
  echo "OK: $b.csv ($rows rows, header matches)"
done

# Microbenchmark smoke: one repetition at minimal min_time just proves every
# registered benchmark still runs to completion.
echo "--- bench_micro (1 repetition)"
if ! "$BUILD_DIR/bench/bench_micro" --benchmark_min_time=0.01 \
    --benchmark_repetitions=1 > bench_micro.log 2>&1; then
  echo "FAIL: bench_micro exited non-zero; last lines:"
  tail -n 20 bench_micro.log
  fail=1
else
  echo "OK: bench_micro ($(grep -c '^BM_' bench_micro.log || true) benchmark lines)"
fi

if [[ $fail -ne 0 ]]; then
  echo "bench smoke FAILED"
  exit 1
fi
echo "bench smoke passed: ${#BENCHES[@]} benches + bench_micro, all CSVs match"
